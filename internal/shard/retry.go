package shard

import (
	"context"
	"math/rand"
	"sync/atomic"
	"time"
)

// FaultPolicy tunes the fan-out's fault-tolerance stack: retry budget,
// backoff shape, circuit-breaker trip/recovery, and hedging. The zero
// value is NOT usable — start from DefaultFaultPolicy() and override,
// then install with Fanout.SetPolicy before serving traffic.
type FaultPolicy struct {
	// MaxAttempts is the per-shard request budget per sweep, including
	// the first try (minimum 1). Retries fire only on shard faults —
	// transport errors, 5xx, torn responses — never on 400/409 answers
	// and never on the caller's own cancellation.
	MaxAttempts int

	// RetryBase and RetryMax bound the jittered exponential backoff
	// between attempts: retry k sleeps base·2^k scaled by a uniform
	// factor in [0.5, 1.5), capped at RetryMax. The sleep never
	// outlives the caller's context.
	RetryBase time.Duration
	RetryMax  time.Duration

	// BreakerThreshold consecutive faults trip a shard's breaker open;
	// BreakerCooldown is how long it then fails fast before the next
	// request is admitted as a half-open health probe (GET /shard/info
	// plus the sweep itself).
	BreakerThreshold int
	BreakerCooldown  time.Duration

	// HedgeAfter, when positive, fixes the hedge delay: a duplicate
	// RPC fires if a shard has not answered within it. When zero the
	// delay adapts to the fleet's recent behaviour: the EWMA of
	// per-shard sweep latency plus the EWMA of the straggler gap (the
	// same max−min spread published as router_straggler_gap), floored
	// at HedgeMin. A cold fan-out with no latency signal never hedges.
	HedgeAfter time.Duration
	HedgeMin   time.Duration

	// DisableHedging turns duplicate requests off entirely.
	DisableHedging bool
}

// DefaultFaultPolicy is what Connect installs: three attempts under a
// 25ms–250ms backoff, an 8-fault breaker with a 5s cooldown, and
// adaptive hedging floored at 2ms.
func DefaultFaultPolicy() FaultPolicy {
	return FaultPolicy{
		MaxAttempts:      3,
		RetryBase:        25 * time.Millisecond,
		RetryMax:         250 * time.Millisecond,
		BreakerThreshold: 8,
		BreakerCooldown:  5 * time.Second,
		HedgeMin:         2 * time.Millisecond,
	}
}

func (p FaultPolicy) sane() FaultPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BreakerThreshold < 1 {
		p.BreakerThreshold = 1
	}
	return p
}

// backoff computes the sleep before retry number `retry` (0-based),
// jittered ±50% so a fleet of routers retrying the same dead shard
// decorrelates instead of stampeding in phase.
func (f *Fanout) backoff(retry int) time.Duration {
	d := f.policy.RetryBase
	for i := 0; i < retry && d < f.policy.RetryMax; i++ {
		d *= 2
	}
	if f.policy.RetryMax > 0 && d > f.policy.RetryMax {
		d = f.policy.RetryMax
	}
	if d <= 0 {
		return 0
	}
	f.rngMu.Lock()
	factor := 0.5 + f.rng.Float64()
	f.rngMu.Unlock()
	return time.Duration(float64(d) * factor)
}

// sleepCtx sleeps for d or until ctx is done, reporting whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// ewma is a lock-free exponentially weighted moving average over
// durations (α = 1/4), used for the adaptive hedge delay. Zero means
// "no signal yet".
type ewma struct {
	nanos atomic.Int64
}

func (e *ewma) observe(d time.Duration) {
	for {
		old := e.nanos.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/4
		}
		if next == 0 {
			next = 1 // keep "has signal" distinct from "no signal"
		}
		if e.nanos.CompareAndSwap(old, next) {
			return
		}
	}
}

func (e *ewma) value() time.Duration { return time.Duration(e.nanos.Load()) }

// newJitterRNG keeps backoff jitter deterministic per Fanout under test
// seeds; guard all use with rngMu, math/rand.Rand is not goroutine-safe.
func newJitterRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
