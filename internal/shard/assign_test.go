package shard

import (
	"testing"
	"testing/quick"
)

// Assign is the cluster's only coordination point: every node computes
// it independently, so it must be a pure function of (size, n) with
// exact covering semantics.
func TestAssignProperties(t *testing.T) {
	prop := func(size16, n8 uint8) bool {
		size, n := int(size16), int(n8)%8+1
		ranges := Assign(size, n)
		if len(ranges) != n {
			t.Errorf("Assign(%d, %d): %d ranges", size, n, len(ranges))
			return false
		}
		ceil := (size + n - 1) / n
		pos := 0
		for i, r := range ranges {
			if r.Lo != pos {
				t.Errorf("Assign(%d, %d): range %d starts at %d, want %d (gap or overlap)", size, n, i, r.Lo, pos)
				return false
			}
			if r.Width() < 0 || r.Width() > ceil {
				t.Errorf("Assign(%d, %d): range %d has width %d, ceil is %d", size, n, i, r.Width(), ceil)
				return false
			}
			pos = r.Hi
		}
		if pos != size {
			t.Errorf("Assign(%d, %d): ranges cover [0, %d), want [0, %d)", size, n, pos, size)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAssignDeterministic(t *testing.T) {
	a := Assign(1000, 7)
	b := Assign(1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Assign is not deterministic: %+v vs %+v", a[i], b[i])
		}
	}
	// The documented shape: the first size%n shards carry the extra row.
	got := Assign(10, 3)
	want := []Range{{0, 4}, {4, 7}, {7, 10}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Assign(10, 3) = %+v, want %+v", got, want)
		}
	}
}
