package shard

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"

	"qirana"
)

// Cluster is an in-process shard cluster: n read-only shard brokers,
// each behind a real HTTP listener on a loopback port. Tests, the
// cluster benchmark group and qirouter's -cluster demo mode all build
// on it — the wire protocol, the fan-out and the merge are exactly the
// production ones; only process boundaries are missing.
type Cluster struct {
	Brokers []*qirana.Broker
	URLs    []string
	// Fanout is the connected fan-out when the cluster was built via
	// AttachLocal (nil from StartLocal); exposed so callers can tune its
	// FaultPolicy.
	Fanout  *Fanout
	servers []*http.Server
}

// NewShardBrokers builds n read-only brokers pricing the SAME support
// set as src: the set is saved once (QIRSUP envelope) and loaded into
// each worker, so every node agrees on generation, checksum and element
// order by construction. The workers share src's database instance —
// pricing never mutates it (overlays only).
func NewShardBrokers(src *qirana.Broker, db *qirana.Database, n int, opt qirana.Options) ([]*qirana.Broker, error) {
	var buf bytes.Buffer
	if err := src.SaveSupportSet(&buf); err != nil {
		return nil, fmt.Errorf("export support set for shards: %w", err)
	}
	opt.DataDir = "" // shards never own durable state
	out := make([]*qirana.Broker, n)
	for i := range out {
		b, err := qirana.NewBrokerFromSupport(db, src.TotalPrice(), bytes.NewReader(buf.Bytes()), opt)
		if err != nil {
			return nil, fmt.Errorf("build shard %d: %w", i, err)
		}
		b.SetReadOnly(true)
		out[i] = b
	}
	return out, nil
}

// StartLocal serves each broker as a shard worker on an ephemeral
// loopback port.
func StartLocal(brokers []*qirana.Broker) (*Cluster, error) {
	c := &Cluster{Brokers: brokers}
	for i, b := range brokers {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("listen for shard %d: %w", i, err)
		}
		srv := &http.Server{Handler: Handler(b)}
		go srv.Serve(ln)
		c.servers = append(c.servers, srv)
		c.URLs = append(c.URLs, "http://"+ln.Addr().String())
	}
	return c, nil
}

// Close shuts every shard server down.
func (c *Cluster) Close() {
	for _, s := range c.servers {
		s.Close()
	}
}

// AttachLocal turns router into the front of an n-shard in-process
// cluster: it builds n read-only workers over router's own support set,
// serves them on loopback ports, handshakes a Fanout against them,
// verifies the agreed identity against the router, and installs the
// fan-out as the router's RemoteSweeper. The caller owns the returned
// Cluster (Close it when done).
func AttachLocal(router *qirana.Broker, db *qirana.Database, n int, opt qirana.Options) (*Cluster, error) {
	brokers, err := NewShardBrokers(router, db, n, opt)
	if err != nil {
		return nil, err
	}
	cl, err := StartLocal(brokers)
	if err != nil {
		return nil, err
	}
	f, err := Connect(context.Background(), cl.URLs, nil)
	if err != nil {
		cl.Close()
		return nil, err
	}
	info := f.Info()
	if info.SupportGen != router.SupportGen() || info.SupportSum != router.SupportChecksum() || info.Size != router.SupportSetSize() {
		cl.Close()
		return nil, fmt.Errorf("%w: shards agree on gen=%d sum=%016x size=%d but the router holds gen=%d sum=%016x size=%d",
			qirana.ErrSupportMismatch, info.SupportGen, info.SupportSum, info.Size,
			router.SupportGen(), router.SupportChecksum(), router.SupportSetSize())
	}
	router.SetRemoteSweeper(f)
	cl.Fanout = f
	return cl, nil
}
