package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"qirana"
	"qirana/internal/durable"
	"qirana/internal/obs"
)

// fakeShard is an httptest-backed shard worker serving a deterministic
// synthetic sweep: element x of query j disagrees iff (x+j)%3 == 0 and
// hashes to x*2654435761+j. Slices therefore merge into exactly the
// vectors sweepWant computes, with no broker underneath — the fault
// tests exercise the fan-out's retry/hedge/breaker machinery in
// isolation. behave intercepts sweep requests (by 1-based hit number)
// to inject faults; returning true means it wrote the response.
type fakeShard struct {
	info   Info
	sweeps atomic.Int64
	infos  atomic.Int64
	behave func(hit int64, w http.ResponseWriter, r *http.Request) bool
	srv    *httptest.Server
}

func fakeDisagree(x, j int) bool    { return (x+j)%3 == 0 }
func fakeHash(x, j int) uint64      { return uint64(x)*2654435761 + uint64(j) }
func testInfo(size int) Info        { return Info{SupportGen: 1, SupportSum: 42, Size: size} }
func testSpec() qirana.SweepSpec    { return qirana.SweepSpec{SupportGen: 1} }
func noHedge(p FaultPolicy) FaultPolicy { p.DisableHedging = true; return p }

func newFakeShard(t *testing.T, size int) *fakeShard {
	t.Helper()
	f := &fakeShard{info: testInfo(size)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/shard/info", func(w http.ResponseWriter, r *http.Request) {
		f.infos.Add(1)
		json.NewEncoder(w).Encode(f.info)
	})
	mux.HandleFunc("POST /v1/shard/sweep", func(w http.ResponseWriter, r *http.Request) {
		hit := f.sweeps.Add(1)
		if f.behave != nil && f.behave(hit, w, r) {
			return
		}
		var req qirana.SweepSliceRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, `{"error":"bad body"}`, http.StatusBadRequest)
			return
		}
		resp := qirana.SweepSliceResponse{SupportGen: req.SupportGen, Lo: req.Lo, Hi: req.Hi}
		nOut := len(req.SQLs)
		if req.Bundle {
			nOut = 1
		}
		resp.Stats = make([]qirana.Stats, nOut)
		for j := 0; j < nOut; j++ {
			resp.Stats[j] = qirana.Stats{Naive: req.Hi - req.Lo}
			if req.Hashes {
				hs := make([]uint64, req.Hi-req.Lo)
				for x := req.Lo; x < req.Hi; x++ {
					hs[x-req.Lo] = fakeHash(x, j)
				}
				resp.Hashes = append(resp.Hashes, hs)
			} else {
				bits := make([]bool, req.Hi-req.Lo)
				for x := req.Lo; x < req.Hi; x++ {
					bits[x-req.Lo] = fakeDisagree(x, j)
				}
				resp.Bits = append(resp.Bits, durable.PackBits(bits))
			}
		}
		json.NewEncoder(w).Encode(resp)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// newFakeCluster connects a Fanout over n fake shards with the given
// policy and an observable registry.
func newFakeCluster(t *testing.T, n, size int, p FaultPolicy) ([]*fakeShard, *Fanout, *obs.Registry) {
	t.Helper()
	shards := make([]*fakeShard, n)
	urls := make([]string, n)
	for i := range shards {
		shards[i] = newFakeShard(t, size)
		urls[i] = shards[i].srv.URL
	}
	f, err := Connect(context.Background(), urls, nil)
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	f.SetPolicy(p)
	reg := obs.New()
	f.AttachObs(reg)
	return shards, f, reg
}

// hangUntilGone blocks a fake-shard handler until the client abandons
// the request. The body must be drained first: net/http only watches
// the connection for a client disconnect (and cancels r.Context())
// once the request body has been consumed.
func hangUntilGone(r *http.Request) {
	io.Copy(io.Discard, r.Body)
	<-r.Context().Done()
}

func wantBits(size, nOut int) [][]bool {
	out := make([][]bool, nOut)
	for j := range out {
		out[j] = make([]bool, size)
		for x := range out[j] {
			out[j][x] = fakeDisagree(x, j)
		}
	}
	return out
}

func checkBits(t *testing.T, got, want [][]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d vectors, want %d", len(got), len(want))
	}
	for j := range want {
		for x := range want[j] {
			if got[j][x] != want[j][x] {
				t.Fatalf("vector %d element %d: got %v, want %v", j, x, got[j][x], want[j][x])
			}
		}
	}
}

func TestRetryRecoversTransientFault(t *testing.T) {
	p := noHedge(DefaultFaultPolicy())
	p.MaxAttempts = 3
	p.RetryBase, p.RetryMax = time.Millisecond, 4*time.Millisecond
	shards, f, reg := newFakeCluster(t, 2, 64, p)
	// Shard 0's first sweep answers 500; the retry must recover it.
	shards[0].behave = func(hit int64, w http.ResponseWriter, r *http.Request) bool {
		if hit == 1 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return true
		}
		return false
	}
	got, stats, err := f.SweepBits(context.Background(), []string{"q0", "q1"}, testSpec())
	if err != nil {
		t.Fatalf("SweepBits: %v", err)
	}
	checkBits(t, got, wantBits(64, 2))
	if n := shards[0].sweeps.Load(); n != 2 {
		t.Fatalf("shard 0 swept %d times, want 2 (original + retry)", n)
	}
	if v := reg.Counter("router_retries").Value(); v != 1 {
		t.Fatalf("router_retries = %d, want 1", v)
	}
	if stats[0].Naive != 64 || stats[1].Naive != 64 {
		t.Fatalf("merged stats lost slice shares: %+v", stats)
	}
}

func TestNoRetryOnInputErrors(t *testing.T) {
	for _, tc := range []struct {
		name   string
		status int
		check  func(error) bool
	}{
		{"bad request", http.StatusBadRequest, func(err error) bool {
			return !errors.Is(err, qirana.ErrShardUnavailable) && !errors.Is(err, qirana.ErrSupportMismatch)
		}},
		{"support mismatch", http.StatusConflict, func(err error) bool {
			return errors.Is(err, qirana.ErrSupportMismatch)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := noHedge(DefaultFaultPolicy())
			p.MaxAttempts = 4
			p.RetryBase = time.Millisecond
			shards, f, reg := newFakeCluster(t, 2, 32, p)
			shards[0].behave = func(int64, http.ResponseWriter, *http.Request) bool { return false }
			shards[1].behave = func(_ int64, w http.ResponseWriter, r *http.Request) bool {
				http.Error(w, fmt.Sprintf(`{"error":{"code":"x","message":"input-class %d"}}`, tc.status), tc.status)
				return true
			}
			_, _, err := f.SweepBits(context.Background(), []string{"q"}, testSpec())
			if err == nil || !tc.check(err) {
				t.Fatalf("wrong error class: %v", err)
			}
			// Input-class answers burn neither the retry budget nor the
			// breaker: one attempt, zero faults recorded.
			if n := shards[1].sweeps.Load(); n != 1 {
				t.Fatalf("shard 1 swept %d times, want 1 (input errors must not retry)", n)
			}
			if v := reg.Counter("router_retries").Value(); v != 0 {
				t.Fatalf("router_retries = %d, want 0", v)
			}
			if st := f.breakers[1].current(); st != breakerClosed {
				t.Fatalf("breaker moved to %v on an input-class answer", st)
			}
		})
	}
}

func TestParentCancelIsNotAShardFault(t *testing.T) {
	p := noHedge(DefaultFaultPolicy())
	p.MaxAttempts = 5
	p.RetryBase = time.Millisecond
	shards, f, reg := newFakeCluster(t, 2, 32, p)
	for _, s := range shards {
		s.behave = func(_ int64, w http.ResponseWriter, r *http.Request) bool {
			hangUntilGone(r)
			return true
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, _, err := f.SweepBits(ctx, []string{"q"}, testSpec())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want the caller's DeadlineExceeded verbatim, got %v", err)
	}
	if errors.Is(err, qirana.ErrShardUnavailable) {
		t.Fatalf("caller cancellation must not be dressed as a shard fault: %v", err)
	}
	for i, s := range shards {
		if n := s.sweeps.Load(); n != 1 {
			t.Fatalf("shard %d swept %d times, want 1 (no retries on caller cancel)", i, n)
		}
		if st := f.breakers[i].current(); st != breakerClosed {
			t.Fatalf("shard %d breaker moved to %v on caller cancel", i, st)
		}
	}
	if v := reg.Counter("router_retries").Value(); v != 0 {
		t.Fatalf("router_retries = %d, want 0", v)
	}
}

func TestBreakerOpensThenRecovers(t *testing.T) {
	p := noHedge(DefaultFaultPolicy())
	p.MaxAttempts = 1 // one attempt per sweep: each sweep is one breaker sample
	p.BreakerThreshold = 2
	p.BreakerCooldown = 50 * time.Millisecond
	shards, f, reg := newFakeCluster(t, 1, 16, p)
	var broken atomic.Bool
	broken.Store(true)
	shards[0].behave = func(_ int64, w http.ResponseWriter, r *http.Request) bool {
		if broken.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return true
		}
		return false
	}
	ctx := context.Background()
	sqls := []string{"q"}
	for i := 0; i < 2; i++ {
		if _, _, err := f.SweepBits(ctx, sqls, testSpec()); !errors.Is(err, qirana.ErrShardUnavailable) {
			t.Fatalf("sweep %d: want ErrShardUnavailable, got %v", i, err)
		}
	}
	if st := f.breakers[0].current(); st != breakerOpen {
		t.Fatalf("after %d faults breaker is %v, want open", p.BreakerThreshold, st)
	}
	if v := reg.Counter("breaker_open").Value(); v != 1 {
		t.Fatalf("breaker_open = %d, want 1", v)
	}

	// While open: fail fast with a Retry-After hint, without touching the
	// shard.
	before := shards[0].sweeps.Load()
	_, _, err := f.SweepBits(ctx, sqls, testSpec())
	if !errors.Is(err, qirana.ErrShardUnavailable) {
		t.Fatalf("open breaker: want ErrShardUnavailable, got %v", err)
	}
	if hint, ok := qirana.RetryAfterHint(err); !ok || hint <= 0 {
		t.Fatalf("open breaker error carries no Retry-After hint: %v (hint %v ok %v)", err, hint, ok)
	}
	if n := shards[0].sweeps.Load(); n != before {
		t.Fatalf("open breaker still reached the shard (%d → %d sweeps)", before, n)
	}
	if v := reg.Counter("breaker_rejects").Value(); v == 0 {
		t.Fatal("breaker_rejects did not move")
	}

	// Heal the shard, wait out the cooldown: the next sweep is admitted
	// as the half-open trial (health probe + sweep) and closes the
	// breaker.
	broken.Store(false)
	time.Sleep(p.BreakerCooldown + 10*time.Millisecond)
	probesBefore := shards[0].infos.Load()
	got, _, err := f.SweepBits(ctx, sqls, testSpec())
	if err != nil {
		t.Fatalf("post-heal sweep: %v", err)
	}
	checkBits(t, got, wantBits(16, 1))
	if st := f.breakers[0].current(); st != breakerClosed {
		t.Fatalf("post-heal breaker is %v, want closed", st)
	}
	if shards[0].infos.Load() == probesBefore {
		t.Fatal("half-open recovery skipped the /shard/info health probe")
	}
	if v := reg.Counter("breaker_close").Value(); v != 1 {
		t.Fatalf("breaker_close = %d, want 1", v)
	}
	if v := reg.Counter("breaker_probes").Value(); v == 0 {
		t.Fatal("breaker_probes did not move")
	}
}

func TestHedgeDuplicateWins(t *testing.T) {
	p := DefaultFaultPolicy()
	p.MaxAttempts = 1
	p.HedgeAfter = 5 * time.Millisecond
	shards, f, reg := newFakeCluster(t, 2, 32, p)
	// Shard 0's first copy stalls until the fan-out is torn down; the
	// hedged duplicate answers normally.
	shards[0].behave = func(hit int64, w http.ResponseWriter, r *http.Request) bool {
		if hit == 1 {
			hangUntilGone(r)
			return true
		}
		return false
	}
	start := time.Now()
	got, _, err := f.SweepBits(context.Background(), []string{"q"}, testSpec())
	if err != nil {
		t.Fatalf("SweepBits: %v", err)
	}
	checkBits(t, got, wantBits(32, 1))
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedge did not rescue the stalled copy (took %v)", elapsed)
	}
	if n := shards[0].sweeps.Load(); n < 2 {
		t.Fatalf("shard 0 saw %d requests, want ≥2 (original + hedge)", n)
	}
	if v := reg.Counter("router_hedges").Value(); v == 0 {
		t.Fatal("router_hedges did not move")
	}
	if v := reg.Counter("router_hedge_wins").Value(); v == 0 {
		t.Fatal("router_hedge_wins did not move")
	}
}

func TestHedgeDisabledNeverDuplicates(t *testing.T) {
	p := noHedge(DefaultFaultPolicy())
	p.HedgeAfter = time.Millisecond // would hedge aggressively if enabled
	shards, f, reg := newFakeCluster(t, 2, 32, p)
	shards[0].behave = func(_ int64, w http.ResponseWriter, r *http.Request) bool {
		time.Sleep(20 * time.Millisecond) // slow, but not faulty
		return false
	}
	if _, _, err := f.SweepBits(context.Background(), []string{"q"}, testSpec()); err != nil {
		t.Fatalf("SweepBits: %v", err)
	}
	if n := shards[0].sweeps.Load(); n != 1 {
		t.Fatalf("shard 0 saw %d requests with hedging disabled, want 1", n)
	}
	if v := reg.Counter("router_hedges").Value(); v != 0 {
		t.Fatalf("router_hedges = %d with hedging disabled", v)
	}
}

func TestDegradedSweepLiveMask(t *testing.T) {
	p := noHedge(DefaultFaultPolicy())
	p.MaxAttempts = 2
	p.RetryBase = time.Millisecond
	p.BreakerThreshold = 100 // keep the breaker out of this test
	shards, f, reg := newFakeCluster(t, 3, 90, p)
	shards[1].behave = func(_ int64, w http.ResponseWriter, r *http.Request) bool {
		panic(http.ErrAbortHandler) // hard down: connection aborted
	}
	bits, stats, live, err := f.SweepBitsDegraded(context.Background(), []string{"q0", "q1"}, testSpec())
	if err != nil {
		t.Fatalf("SweepBitsDegraded: %v", err)
	}
	dead := f.ranges[1]
	want := wantBits(90, 2)
	for x := 0; x < 90; x++ {
		inDead := x >= dead.Lo && x < dead.Hi
		if live[x] == inDead {
			t.Fatalf("element %d: live=%v but dead slice is [%d,%d)", x, live[x], dead.Lo, dead.Hi)
		}
		for j := range want {
			switch {
			case inDead && bits[j][x]:
				t.Fatalf("dead element %d not zero-filled", x)
			case !inDead && bits[j][x] != want[j][x]:
				t.Fatalf("live element %d vector %d: got %v want %v", x, j, bits[j][x], want[j][x])
			}
		}
	}
	// Stats must cover exactly the live slices.
	wantNaive := 90 - dead.Width()
	if stats[0].Naive != wantNaive {
		t.Fatalf("degraded stats Naive = %d, want %d (live slices only)", stats[0].Naive, wantNaive)
	}
	if v := reg.Counter("router_degraded_sweeps").Value(); v != 1 {
		t.Fatalf("router_degraded_sweeps = %d, want 1", v)
	}

	// The hash analogue.
	hashes, _, hlive, err := f.SweepHashesDegraded(context.Background(), []string{"q0"}, testSpec())
	if err != nil {
		t.Fatalf("SweepHashesDegraded: %v", err)
	}
	for x := 0; x < 90; x++ {
		inDead := x >= dead.Lo && x < dead.Hi
		if hlive[x] == inDead {
			t.Fatalf("hash live mask wrong at %d", x)
		}
		if !inDead && hashes[0][x] != fakeHash(x, 0) {
			t.Fatalf("hash element %d: got %d want %d", x, hashes[0][x], fakeHash(x, 0))
		}
	}
}

func TestDegradedSweepAllShardsDown(t *testing.T) {
	p := noHedge(DefaultFaultPolicy())
	p.MaxAttempts = 1
	shards, f, _ := newFakeCluster(t, 2, 32, p)
	for _, s := range shards {
		s.behave = func(_ int64, w http.ResponseWriter, r *http.Request) bool {
			panic(http.ErrAbortHandler)
		}
	}
	_, _, _, err := f.SweepBitsDegraded(context.Background(), []string{"q"}, testSpec())
	if !errors.Is(err, qirana.ErrShardUnavailable) {
		t.Fatalf("all-down degraded sweep: want ErrShardUnavailable, got %v", err)
	}
}

func TestDegradedSweepRejectsSampledSpec(t *testing.T) {
	_, f, _ := newFakeCluster(t, 2, 32, noHedge(DefaultFaultPolicy()))
	spec := testSpec()
	spec.SampleFrac, spec.SampleSeed = 0.5, 7
	if _, _, _, err := f.SweepBitsDegraded(context.Background(), []string{"q"}, spec); err == nil {
		t.Fatal("degraded sweep accepted a sampled spec")
	}
}

func TestDegradedSweepRejectsInputError(t *testing.T) {
	p := noHedge(DefaultFaultPolicy())
	shards, f, _ := newFakeCluster(t, 2, 32, p)
	shards[0].behave = func(_ int64, w http.ResponseWriter, r *http.Request) bool {
		http.Error(w, `{"error":"no such table"}`, http.StatusBadRequest)
		return true
	}
	_, _, _, err := f.SweepBitsDegraded(context.Background(), []string{"q"}, testSpec())
	if err == nil || errors.Is(err, qirana.ErrShardUnavailable) {
		t.Fatalf("a 400 must abort the degraded sweep as an input error, got %v", err)
	}
}
