// Package value implements the typed SQL values used throughout qirana's
// relational engine and pricing framework: NULL, 64-bit integers, floats,
// strings, booleans and dates, together with SQL three-valued comparison
// logic, arithmetic, LIKE matching and stable hashing.
package value

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported SQL value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is an immutable SQL value. The zero Value is NULL.
//
// Dates are stored in I as days since 1970-01-01 so that date comparison
// and interval arithmetic reduce to integer operations.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Null is the SQL NULL value.
var Null = Value{K: KindNull}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a floating-point value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	if b {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// NewDate returns a date value for the given civil date.
func NewDate(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{K: KindDate, I: int64(t.Unix() / 86400)}
}

// NewDateDays returns a date value holding the given number of days since
// the Unix epoch.
func NewDateDays(days int64) Value { return Value{K: KindDate, I: days} }

// ParseDate parses a 'YYYY-MM-DD' literal.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("invalid date literal %q: %w", s, err)
	}
	return Value{K: KindDate, I: int64(t.Unix() / 86400)}, nil
}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool reports the truth of a boolean value; NULL and non-booleans are false.
func (v Value) Bool() bool { return v.K == KindBool && v.I != 0 }

// AsFloat converts numeric values (int, float, bool, date) to float64.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindBool, KindDate:
		return float64(v.I)
	case KindFloat:
		return v.F
	}
	return 0
}

// AsInt converts numeric values to int64, truncating floats.
func (v Value) AsInt() int64 {
	if v.K == KindFloat {
		return int64(v.F)
	}
	return v.I
}

// IsNumeric reports whether the value participates in arithmetic.
func (v Value) IsNumeric() bool {
	return v.K == KindInt || v.K == KindFloat
}

// Time returns the civil time of a date value.
func (v Value) Time() time.Time {
	return time.Unix(v.I*86400, 0).UTC()
}

// String renders the value the way a query result would print it.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "TRUE"
		}
		return "FALSE"
	case KindDate:
		return v.Time().Format("2006-01-02")
	}
	return "?"
}

// SQL renders the value as a SQL literal.
func (v Value) SQL() string {
	switch v.K {
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindDate:
		return "date '" + v.Time().Format("2006-01-02") + "'"
	default:
		return v.String()
	}
}

// Compare orders two non-NULL values. Numeric kinds (int, float) compare
// numerically against each other; dates compare with ints/floats by their
// day number, mirroring permissive DBMS coercion. It returns -1, 0 or +1.
// Comparing NULL with anything returns 0 with ok=false.
func Compare(a, b Value) (cmp int, ok bool) {
	if a.K == KindNull || b.K == KindNull {
		return 0, false
	}
	// Same-kind fast paths.
	if a.K == b.K {
		switch a.K {
		case KindInt, KindBool, KindDate:
			return cmpInt(a.I, b.I), true
		case KindFloat:
			return cmpFloat(a.F, b.F), true
		case KindString:
			return strings.Compare(a.S, b.S), true
		}
	}
	// Cross-kind numeric coercion.
	an, bn := a.coercibleNumeric(), b.coercibleNumeric()
	if an && bn {
		return cmpFloat(a.AsFloat(), b.AsFloat()), true
	}
	// String vs numeric: try parsing the string (MySQL-style leniency).
	if a.K == KindString && bn {
		if f, err := strconv.ParseFloat(strings.TrimSpace(a.S), 64); err == nil {
			return cmpFloat(f, b.AsFloat()), true
		}
		return cmpInt(1, 0), true // non-numeric strings sort above numbers, arbitrarily but stably
	}
	if b.K == KindString && an {
		c, ok2 := Compare(b, a)
		return -c, ok2
	}
	// Fallback: order by kind to stay total.
	return cmpInt(int64(a.K), int64(b.K)), true
}

func (v Value) coercibleNumeric() bool {
	switch v.K {
	case KindInt, KindFloat, KindBool, KindDate:
		return true
	}
	return false
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Equal reports SQL equality for two values under the total ordering used by
// Compare, treating NULL as equal only to NULL. This is the *grouping*
// notion of equality (as in GROUP BY / DISTINCT), not the 3VL predicate.
func Equal(a, b Value) bool {
	if a.K == KindNull || b.K == KindNull {
		return a.K == b.K
	}
	c, _ := Compare(a, b)
	return c == 0
}

// Tristate is a SQL three-valued logic truth value.
type Tristate int8

// The three SQL truth values.
const (
	False   Tristate = 0
	True    Tristate = 1
	Unknown Tristate = -1
)

// ToValue converts a Tristate to a SQL value (Unknown becomes NULL).
func (t Tristate) ToValue() Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	}
	return Null
}

// TristateOf converts a value to a truth value: NULL is Unknown, booleans
// map directly, and numerics are true iff nonzero (MySQL-style).
func TristateOf(v Value) Tristate {
	switch v.K {
	case KindNull:
		return Unknown
	case KindBool, KindInt, KindDate:
		if v.I != 0 {
			return True
		}
		return False
	case KindFloat:
		if v.F != 0 {
			return True
		}
		return False
	case KindString:
		if v.S != "" {
			return True
		}
		return False
	}
	return Unknown
}

// And is Kleene conjunction.
func And(a, b Tristate) Tristate {
	if a == False || b == False {
		return False
	}
	if a == True && b == True {
		return True
	}
	return Unknown
}

// Or is Kleene disjunction.
func Or(a, b Tristate) Tristate {
	if a == True || b == True {
		return True
	}
	if a == False && b == False {
		return False
	}
	return Unknown
}

// Not is Kleene negation.
func Not(a Tristate) Tristate {
	switch a {
	case True:
		return False
	case False:
		return True
	}
	return Unknown
}

// Arith applies a SQL arithmetic operator (+ - * / %) with NULL propagation.
// Dates support date ± int (days); other operands are coerced to numeric.
func Arith(op byte, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	// Date arithmetic: date ± integer days.
	if a.K == KindDate && b.K == KindInt {
		switch op {
		case '+':
			return NewDateDays(a.I + b.I), nil
		case '-':
			return NewDateDays(a.I - b.I), nil
		}
	}
	if a.K == KindDate && b.K == KindDate && op == '-' {
		return NewInt(a.I - b.I), nil
	}
	if a.K == KindInt && b.K == KindInt && op != '/' {
		switch op {
		case '+':
			return NewInt(a.I + b.I), nil
		case '-':
			return NewInt(a.I - b.I), nil
		case '*':
			return NewInt(a.I * b.I), nil
		case '%':
			if b.I == 0 {
				return Null, nil
			}
			return NewInt(a.I % b.I), nil
		}
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch op {
	case '+':
		return NewFloat(af + bf), nil
	case '-':
		return NewFloat(af - bf), nil
	case '*':
		return NewFloat(af * bf), nil
	case '/':
		if bf == 0 {
			return Null, nil // SQL: division by zero yields NULL (MySQL default)
		}
		return NewFloat(af / bf), nil
	case '%':
		if bf == 0 {
			return Null, nil
		}
		return NewFloat(math.Mod(af, bf)), nil
	}
	return Null, fmt.Errorf("unknown arithmetic operator %q", string(op))
}

// AddMonths shifts a date by n calendar months (for INTERVAL 'n' MONTH).
func AddMonths(d Value, n int) Value {
	if d.K != KindDate {
		return Null
	}
	t := d.Time().AddDate(0, n, 0)
	return NewDate(t.Year(), t.Month(), t.Day())
}

// AddYears shifts a date by n calendar years.
func AddYears(d Value, n int) Value {
	if d.K != KindDate {
		return Null
	}
	t := d.Time().AddDate(n, 0, 0)
	return NewDate(t.Year(), t.Month(), t.Day())
}

// Like evaluates the SQL LIKE predicate with % and _ wildcards,
// case-insensitively (MySQL default collation behaviour).
func Like(s, pattern string) bool {
	return likeMatch(strings.ToLower(s), strings.ToLower(pattern))
}

func likeMatch(s, p string) bool {
	// Iterative matcher with backtracking on the last '%' seen.
	si, pi := 0, 0
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			star, sBack = pi, si
			pi++
		case star >= 0:
			sBack++
			si, pi = sBack, star+1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// Hash returns a stable 64-bit hash of the value. Integers, equal-valued
// floats and dates that compare equal hash equally where feasible: integral
// floats hash as their integer value so that cross-kind equal numerics
// collide as required by Equal.
func (v Value) Hash() uint64 {
	h := fnv.New64a()
	v.HashInto(h)
	return h.Sum64()
}

// HashInto writes the value's canonical bytes into a hash.
func (v Value) HashInto(h interface{ Write([]byte) (int, error) }) {
	var buf [9]byte
	switch v.K {
	case KindNull:
		buf[0] = 0
		h.Write(buf[:1])
	case KindInt, KindBool, KindDate:
		buf[0] = 1
		putInt64(buf[1:], v.I)
		h.Write(buf[:9])
	case KindFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e18 {
			buf[0] = 1
			putInt64(buf[1:], int64(v.F))
			h.Write(buf[:9])
			return
		}
		buf[0] = 2
		putInt64(buf[1:], int64(math.Float64bits(v.F)))
		h.Write(buf[:9])
	case KindString:
		buf[0] = 3
		h.Write(buf[:1])
		h.Write([]byte(strings.ToLower(v.S)))
		buf[0] = 0xFF
		h.Write(buf[:1])
	}
}

func putInt64(b []byte, v int64) {
	u := uint64(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

// HashRow hashes a tuple of values.
func HashRow(row []Value) uint64 {
	h := fnv.New64a()
	for _, v := range row {
		v.HashInto(h)
	}
	return h.Sum64()
}

// Key renders a tuple as a canonical string usable as a map key (used for
// primary-key indexes and group-by keys).
func Key(vals []Value) string {
	var sb strings.Builder
	for _, v := range vals {
		switch v.K {
		case KindNull:
			sb.WriteByte(0)
		case KindInt, KindBool, KindDate:
			sb.WriteByte(1)
			var b [8]byte
			putInt64(b[:], v.I)
			sb.Write(b[:])
		case KindFloat:
			if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e18 {
				sb.WriteByte(1)
				var b [8]byte
				putInt64(b[:], int64(v.F))
				sb.Write(b[:])
			} else {
				sb.WriteByte(2)
				var b [8]byte
				putInt64(b[:], int64(math.Float64bits(v.F)))
				sb.Write(b[:])
			}
		case KindString:
			sb.WriteByte(3)
			sb.WriteString(strings.ToLower(v.S))
			sb.WriteByte(0xFF)
		}
	}
	return sb.String()
}
