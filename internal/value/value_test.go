package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INT", KindFloat: "FLOAT",
		KindString: "VARCHAR", KindBool: "BOOLEAN", KindDate: "DATE",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || NewInt(3).IsNull() {
		t.Fatal("IsNull")
	}
	if NewInt(7).AsFloat() != 7 || NewFloat(2.5).AsFloat() != 2.5 {
		t.Fatal("AsFloat")
	}
	if NewFloat(9.9).AsInt() != 9 || NewInt(-4).AsInt() != -4 {
		t.Fatal("AsInt")
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() || NewInt(1).Bool() {
		t.Fatal("Bool")
	}
	if !NewInt(1).IsNumeric() || NewString("x").IsNumeric() || Null.IsNumeric() {
		t.Fatal("IsNumeric")
	}
}

func TestDates(t *testing.T) {
	d, err := ParseDate("2011-07-04")
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "2011-07-04" {
		t.Fatalf("round trip: %s", d)
	}
	if d.Time().Weekday() != time.Monday {
		t.Fatalf("2011-07-04 was a Monday, got %v", d.Time().Weekday())
	}
	if NewDate(2011, time.July, 4) != d {
		t.Fatal("NewDate mismatch")
	}
	if _, err := ParseDate("2011-13-45"); err == nil {
		t.Fatal("bad date accepted")
	}
	// Interval arithmetic.
	if got := AddMonths(d, 6).String(); got != "2012-01-04" {
		t.Fatalf("AddMonths: %s", got)
	}
	if got := AddYears(d, -1).String(); got != "2010-07-04" {
		t.Fatalf("AddYears: %s", got)
	}
	plus90, err := Arith('+', d, NewInt(90))
	if err != nil || plus90.String() != "2011-10-02" {
		t.Fatalf("date+90: %v %v", plus90, err)
	}
	diff, err := Arith('-', plus90, d)
	if err != nil || diff.AsInt() != 90 {
		t.Fatalf("date-date: %v", diff)
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewFloat(2.0), NewInt(2), 0},
		{NewFloat(2.5), NewInt(2), 1},
		{NewString("abc"), NewString("abd"), -1},
		{NewString("10"), NewInt(9), 1}, // numeric string coercion
		{NewBool(true), NewInt(1), 0},
		{NewDate(2000, 1, 1), NewDate(1999, 12, 31), 1},
	}
	for _, c := range cases {
		got, ok := Compare(c.a, c.b)
		if !ok || got != c.want {
			t.Errorf("Compare(%v,%v) = %d,%v want %d", c.a, c.b, got, ok, c.want)
		}
	}
	if _, ok := Compare(Null, NewInt(1)); ok {
		t.Error("NULL comparison must be unknown")
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	vals := []Value{NewInt(-3), NewInt(0), NewFloat(2.5), NewString("a"),
		NewString("2.5"), NewBool(true), NewDate(2020, 5, 5)}
	for _, a := range vals {
		for _, b := range vals {
			ab, ok1 := Compare(a, b)
			ba, ok2 := Compare(b, a)
			if ok1 != ok2 || ab != -ba {
				t.Errorf("antisymmetry broken for %v vs %v: %d %d", a, b, ab, ba)
			}
		}
	}
}

func TestTristateLogic(t *testing.T) {
	ts := []Tristate{False, True, Unknown}
	for _, a := range ts {
		if And(a, False) != False || And(False, a) != False {
			t.Error("AND false")
		}
		if Or(a, True) != True || Or(True, a) != True {
			t.Error("OR true")
		}
		if Not(Not(a)) != a {
			t.Error("double negation")
		}
	}
	if And(True, Unknown) != Unknown || Or(False, Unknown) != Unknown {
		t.Error("Kleene unknown propagation")
	}
	if TristateOf(Null) != Unknown || TristateOf(NewInt(0)) != False || TristateOf(NewInt(5)) != True {
		t.Error("TristateOf")
	}
	if Unknown.ToValue() != Null || True.ToValue() != NewBool(true) {
		t.Error("ToValue")
	}
}

func TestArith(t *testing.T) {
	got, _ := Arith('+', NewInt(2), NewInt(3))
	if got != NewInt(5) {
		t.Fatal("int add")
	}
	got, _ = Arith('*', NewInt(4), NewFloat(0.5))
	if got.AsFloat() != 2 {
		t.Fatal("mixed mul")
	}
	got, _ = Arith('/', NewInt(5), NewInt(2))
	if got.AsFloat() != 2.5 {
		t.Fatal("division is exact: want 2.5")
	}
	got, _ = Arith('/', NewInt(5), NewInt(0))
	if !got.IsNull() {
		t.Fatal("division by zero yields NULL")
	}
	got, _ = Arith('%', NewInt(7), NewInt(3))
	if got != NewInt(1) {
		t.Fatal("mod")
	}
	got, _ = Arith('+', Null, NewInt(1))
	if !got.IsNull() {
		t.Fatal("NULL propagation")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"Alice", "A%", true},
		{"alice", "A%", true}, // case-insensitive
		{"Bob", "A%", false},
		{"Canada", "%ada", true},
		{"Canada", "%ana%", true},
		{"Canada", "C_n_d_", true},
		{"Canada", "C_n_d", false},
		{"", "%", true},
		{"", "_", false},
		{"STANDARD BRASS", "%BRASS", true},
		{"abc", "abc", true},
		{"ab", "a%b%c", false},
		{"axbyc", "a%b%c", true},
	}
	for _, c := range cases {
		if Like(c.s, c.p) != c.want {
			t.Errorf("Like(%q,%q) != %v", c.s, c.p, c.want)
		}
	}
}

// Property: hashing respects Equal — equal values hash equally, including
// across int/float kinds.
func TestQuickHashRespectsEqual(t *testing.T) {
	f := func(n int32) bool {
		a := NewInt(int64(n))
		b := NewFloat(float64(n))
		return Equal(a, b) && a.Hash() == b.Hash() &&
			Key([]Value{a}) == Key([]Value{b})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: distinct ints virtually never collide under Hash or Key.
func TestQuickHashSeparates(t *testing.T) {
	f := func(a, b int64) bool {
		if a == b {
			return true
		}
		va, vb := NewInt(a), NewInt(b)
		return va.Hash() != vb.Hash() && Key([]Value{va}) != Key([]Value{vb})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare is a total order consistent with Equal for non-null
// values of the same kind.
func TestQuickCompareTotalOrder(t *testing.T) {
	f := func(a, b, c int64) bool {
		va, vb, vc := NewInt(a), NewInt(b), NewInt(c)
		ab, _ := Compare(va, vb)
		bc, _ := Compare(vb, vc)
		ac, _ := Compare(va, vc)
		// Transitivity of <=.
		if ab <= 0 && bc <= 0 && ac > 0 {
			return false
		}
		return (ab == 0) == Equal(va, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: string Key round-trips distinctness (prefix-free encoding).
func TestQuickKeyPrefixFree(t *testing.T) {
	f := func(s1, s2 string, n int8) bool {
		// ("ab","c") must differ from ("a","bc") style splits.
		k1 := Key([]Value{NewString(s1), NewString(s2)})
		k2 := Key([]Value{NewString(s1 + s2), NewString("")})
		if s2 == "" {
			return true
		}
		return k1 != k2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSQLRendering(t *testing.T) {
	if NewString("O'Brien").SQL() != "'O''Brien'" {
		t.Error("quote escaping")
	}
	if NewDate(2011, 1, 2).SQL() != "date '2011-01-02'" {
		t.Error("date literal")
	}
	if NewInt(-5).SQL() != "-5" {
		t.Error("int literal")
	}
	if Null.String() != "NULL" || NewBool(true).String() != "TRUE" {
		t.Error("rendering")
	}
}

func TestFloatHashIntegralNormalization(t *testing.T) {
	// Non-integral floats hash by bits; integral ones normalize to ints.
	a, b := NewFloat(1.5), NewFloat(1.5)
	if a.Hash() != b.Hash() {
		t.Fatal("identical floats must collide")
	}
	if NewFloat(math.Pi).Hash() == NewFloat(math.E).Hash() {
		t.Fatal("distinct floats should differ")
	}
}
