package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunCoversAllItems(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, workers := range []int{1, 2, 4, 100} {
		n := 237
		hits := make([]atomic.Int32, n)
		if err := Run(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestRunReturnsSmallestIndexError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	// Every item from 50 on fails; the reported error must be one of the
	// failing items and, across many runs, never precede index 50.
	for trial := 0; trial < 20; trial++ {
		err := Run(4, 200, func(i int) error {
			if i >= 50 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
	}
}

func TestRunCancelsAfterFailure(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	var executed atomic.Int32
	err := Run(4, 10000, func(i int) error {
		executed.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	// Cancellation is prompt: nowhere near all items may run. The bound is
	// loose (each worker can be mid-item when the flag flips).
	if n := executed.Load(); n > 5000 {
		t.Fatalf("executed %d items after failure; cancellation did not propagate", n)
	}
}

func TestSerialIsInOrderAndFailFast(t *testing.T) {
	var seen []int
	err := Run(1, 10, func(i int) error {
		seen = append(seen, i)
		if i == 4 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || len(seen) != 5 {
		t.Fatalf("serial run: seen=%v err=%v", seen, err)
	}
	for i, v := range seen {
		if i != v {
			t.Fatalf("serial order violated: %v", seen)
		}
	}
}

func TestRunCtxCancelsMidRun(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var executed atomic.Int32
		err := RunCtx(ctx, workers, 10000, func(i int) error {
			if executed.Add(1) == 5 {
				cancel()
			}
			return nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		if n := executed.Load(); n > 5000 {
			t.Fatalf("workers=%d: executed %d items after cancel", workers, n)
		}
	}
}

func TestRunCtxDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := RunCtx(ctx, 1, 1000, func(i int) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

func TestRunCtxCompletedBeforeCancelIsNil(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	if err := RunCtx(ctx, 1, 10, func(i int) error { return nil }); err != nil {
		t.Fatalf("uncancelled run: %v", err)
	}
	cancel()
}

func TestRunRecoversPanic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, workers := range []int{1, 4} {
		err := Run(workers, 100, func(i int) error {
			if i == 7 {
				panic("kaboom")
			}
			return nil
		})
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("workers=%d: panic not surfaced as error: %v", workers, err)
		}
	}
}

func TestRunWorkersRecoversPanicValueError(t *testing.T) {
	boom := errors.New("typed boom")
	err := RunWorkers(1, 3, func(_, i int) error {
		if i == 1 {
			panic(boom)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "typed boom") {
		t.Fatalf("got %v", err)
	}
}

func TestClamp(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	if got := Clamp(0, 10); got != 1 {
		t.Fatalf("Clamp(0,10)=%d", got)
	}
	if got := Clamp(8, 3); got != 3 {
		t.Fatalf("Clamp(8,3)=%d", got)
	}
	if got := Clamp(3, -1); got < 1 {
		t.Fatalf("Clamp(3,-1)=%d", got)
	}
}
