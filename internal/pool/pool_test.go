package pool

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunCoversAllItems(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	for _, workers := range []int{1, 2, 4, 100} {
		n := 237
		hits := make([]atomic.Int32, n)
		if err := Run(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestRunReturnsSmallestIndexError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	// Every item from 50 on fails; the reported error must be one of the
	// failing items and, across many runs, never precede index 50.
	for trial := 0; trial < 20; trial++ {
		err := Run(4, 200, func(i int) error {
			if i >= 50 {
				return fmt.Errorf("item %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected an error")
		}
	}
}

func TestRunCancelsAfterFailure(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	var executed atomic.Int32
	err := Run(4, 10000, func(i int) error {
		executed.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	// Cancellation is prompt: nowhere near all items may run. The bound is
	// loose (each worker can be mid-item when the flag flips).
	if n := executed.Load(); n > 5000 {
		t.Fatalf("executed %d items after failure; cancellation did not propagate", n)
	}
}

func TestSerialIsInOrderAndFailFast(t *testing.T) {
	var seen []int
	err := Run(1, 10, func(i int) error {
		seen = append(seen, i)
		if i == 4 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil || len(seen) != 5 {
		t.Fatalf("serial run: seen=%v err=%v", seen, err)
	}
	for i, v := range seen {
		if i != v {
			t.Fatalf("serial order violated: %v", seen)
		}
	}
}

func TestClamp(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	if got := Clamp(0, 10); got != 1 {
		t.Fatalf("Clamp(0,10)=%d", got)
	}
	if got := Clamp(8, 3); got != 3 {
		t.Fatalf("Clamp(8,3)=%d", got)
	}
	if got := Clamp(3, -1); got < 1 {
		t.Fatalf("Clamp(3,-1)=%d", got)
	}
}
