// Package pool provides the bounded worker pool shared by the pricing
// engine and the disagreement checker. All pricing-side parallelism runs
// through it, so one knob (pricing.Options.Workers) governs the whole
// engine.
//
// Work is handed out through an atomic work-stealing index rather than
// static chunking: a worker that draws a cheap item immediately steals the
// next one, so a few expensive items (a skewed relation, a residual full
// run) cannot idle the rest of the pool.
//
// Error handling is fail-fast and deterministic-leaning: each worker
// records only its first error, every other worker stops drawing new items
// as soon as any error is recorded, and Run returns the recorded error
// with the smallest item index. Callers therefore see the error closest to
// the one a serial left-to-right run would have hit.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Clamp bounds a requested worker count to [1, GOMAXPROCS] and to the item
// count n. Zero or negative requests mean "serial".
func Clamp(workers, n int) int {
	if workers < 1 {
		workers = 1
	}
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if n >= 0 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// RunWorkers executes fn(worker, i) for every i in [0, n), using at most
// the given number of goroutines. The worker argument identifies the
// executing goroutine (0 ≤ worker < effective workers), letting callers
// keep cheap per-worker scratch state (e.g. a database overlay) without
// locking. fn must write only to item-indexed slots or worker-private
// state; items are claimed through a shared atomic counter.
//
// With workers ≤ 1 (or n ≤ 1) the items run inline on the calling
// goroutine in index order, so the serial path stays allocation- and
// goroutine-free and bitwise identical to the pre-pool behavior.
func RunWorkers(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers, n)
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var next atomic.Int64
	var failed atomic.Bool
	type firstErr struct {
		idx int
		err error
	}
	errs := make([]firstErr, workers)
	for w := range errs {
		errs[w].idx = -1
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(w, i); err != nil {
					errs[w] = firstErr{idx: i, err: err}
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	best := -1
	for w := range errs {
		if errs[w].idx < 0 {
			continue
		}
		if best < 0 || errs[w].idx < errs[best].idx {
			best = w
		}
	}
	if best >= 0 {
		return errs[best].err
	}
	return nil
}

// Run is RunWorkers for callers that need no per-worker state.
func Run(workers, n int, fn func(i int) error) error {
	return RunWorkers(workers, n, func(_, i int) error { return fn(i) })
}
