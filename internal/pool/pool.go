// Package pool provides the bounded worker pool shared by the pricing
// engine and the disagreement checker. All pricing-side parallelism runs
// through it, so one knob (pricing.Options.Workers) governs the whole
// engine.
//
// Work is handed out through an atomic work-stealing index rather than
// static chunking: a worker that draws a cheap item immediately steals the
// next one, so a few expensive items (a skewed relation, a residual full
// run) cannot idle the rest of the pool.
//
// Error handling is fail-fast and deterministic-leaning: each worker
// records only its first error, every other worker stops drawing new items
// as soon as any error is recorded, and Run returns the recorded error
// with the smallest item index. Callers therefore see the error closest to
// the one a serial left-to-right run would have hit.
//
// Cancellation uses the same fail-fast machinery: the Ctx variants poll
// ctx between items (serial and parallel alike), so a cancelled context or
// an expired deadline stops the pool mid-sweep with ctx.Err() instead of
// running the remaining items. A panic inside fn never tears down the
// process: it is recovered in the worker and surfaced as an ordinary
// error (with the item index and stack), which fail-fasts the rest of the
// pool exactly like a returned error.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Clamp bounds a requested worker count to [1, GOMAXPROCS] and to the item
// count n. Zero or negative requests mean "serial".
func Clamp(workers, n int) int {
	if workers < 1 {
		workers = 1
	}
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if n >= 0 && workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// safeCall runs fn(w, i), converting a panic into an error carrying the
// item index and the goroutine stack, so one poisoned item fails the call
// like any other error instead of crashing the process.
func safeCall(fn func(worker, i int) error, w, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pool: panic on item %d: %v\n%s", i, r, debug.Stack())
		}
	}()
	return fn(w, i)
}

// RunWorkersCtx executes fn(worker, i) for every i in [0, n), using at
// most the given number of goroutines. The worker argument identifies the
// executing goroutine (0 ≤ worker < effective workers), letting callers
// keep cheap per-worker scratch state (e.g. a database overlay) without
// locking. fn must write only to item-indexed slots or worker-private
// state; items are claimed through a shared atomic counter.
//
// ctx is polled before every item: once it is cancelled (or its deadline
// passes) no further items start and the call returns ctx.Err(). Items
// already in flight run to completion — fn is never interrupted midway —
// so the usual apply/undo invariants hold even on the cancelled path.
//
// With workers ≤ 1 (or n ≤ 1) the items run inline on the calling
// goroutine in index order, so the serial path stays allocation- and
// goroutine-free and bitwise identical to the pre-pool behavior.
func RunWorkersCtx(ctx context.Context, workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Clamp(workers, n)
	if workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := safeCall(fn, 0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var next atomic.Int64
	var failed, cancelled atomic.Bool
	type firstErr struct {
		idx int
		err error
	}
	errs := make([]firstErr, workers)
	for w := range errs {
		errs[w].idx = -1
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !failed.Load() {
				if ctx.Err() != nil {
					cancelled.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := safeCall(fn, w, i); err != nil {
					errs[w] = firstErr{idx: i, err: err}
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	best := -1
	for w := range errs {
		if errs[w].idx < 0 {
			continue
		}
		if best < 0 || errs[w].idx < errs[best].idx {
			best = w
		}
	}
	if best >= 0 {
		return errs[best].err
	}
	if cancelled.Load() {
		return ctx.Err()
	}
	return nil
}

// RunWorkers is RunWorkersCtx without cancellation.
func RunWorkers(workers, n int, fn func(worker, i int) error) error {
	return RunWorkersCtx(context.Background(), workers, n, fn)
}

// RunCtx is RunWorkersCtx for callers that need no per-worker state.
func RunCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	return RunWorkersCtx(ctx, workers, n, func(_, i int) error { return fn(i) })
}

// Run is RunCtx without cancellation.
func Run(workers, n int, fn func(i int) error) error {
	return RunCtx(context.Background(), workers, n, fn)
}
