// Package quotecache is the broker's cross-query price cache: a
// capacity-bounded LRU map with singleflight request coalescing.
//
// The broker keys entries by the canonical query fingerprint combined
// with every input the price depends on (pricing function, weights
// epoch, support-set generation, the referenced relations' version
// counters — see qirana.Broker), so a cached value can be served without
// any validity check: staleness is impossible by construction, stale
// keys simply stop being asked for and age out of the LRU. Coalescing
// means N concurrent misses on one key run the underlying computation
// once; the N−1 waiters block until the leader finishes and then share
// its result bit-for-bit.
package quotecache

import (
	"container/list"
	"context"
	"errors"
	"strings"
	"sync"

	"qirana/internal/obs"
)

// Stats are the cache's monotonic counters. Hits and Misses are totals;
// the Bitmap/Price/Template triples split them by entry kind (see Kind).
type Stats struct {
	// Hits counts lookups served from the LRU.
	Hits uint64
	// Misses counts lookups that ran the computation (flight leaders).
	Misses uint64
	// CoalescedWaits counts lookups that joined another caller's
	// in-flight computation instead of running their own.
	CoalescedWaits uint64
	// Evictions counts entries dropped by the LRU capacity bound.
	Evictions uint64

	// Per-kind splits of Hits/Misses. Bitmap counts full-constant
	// disagreement bitmaps ("d|" keys), Price full-constant entropy prices
	// ("e|" keys), Template the template-keyed entries shared between
	// prepared statements and auto-detected ad-hoc templates ("td|"/"te|"
	// keys), Approx the sampled-estimate entries the background refiner
	// upgrades in place ("a|" keys). Keys with any other shape land in
	// Bitmap+Price = 0 buckets (OtherHits/OtherMisses are not tracked
	// separately; the broker only writes the five prefixes above).
	BitmapHits     uint64
	BitmapMisses   uint64
	PriceHits      uint64
	PriceMisses    uint64
	TemplateHits   uint64
	TemplateMisses uint64
	ApproxHits     uint64
	ApproxMisses   uint64
}

// Kind classifies a cache key by the prefix discipline the broker uses.
type Kind int

// The entry kinds.
const (
	KindOther    Kind = iota
	KindBitmap        // "d|" full-constant disagreement bitmap
	KindPrice         // "e|" full-constant entropy price
	KindTemplate      // "td|" / "te|" template-keyed entry
	KindApprox        // "a|" sampled estimate, refinable to exact
)

// numKinds sizes the per-kind counter arrays.
const numKinds = 5

// KindOf derives the entry kind from the key prefix.
func KindOf(key string) Kind {
	switch {
	case strings.HasPrefix(key, "td|"), strings.HasPrefix(key, "te|"):
		return KindTemplate
	case strings.HasPrefix(key, "d|"):
		return KindBitmap
	case strings.HasPrefix(key, "e|"):
		return KindPrice
	case strings.HasPrefix(key, "a|"):
		return KindApprox
	}
	return KindOther
}

// Cache is a concurrency-safe LRU with request coalescing. The zero
// value is not usable; construct with New.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	flights map[string]*flight
	stats   Stats

	// Pre-resolved obs counters (nil until AttachObs): the hot path pays
	// one nil check per event, never a registry map lookup. The kind
	// arrays are indexed by Kind.
	cHits, cMisses, cCoalesced, cEvictions *obs.Counter
	cKindHits, cKindMisses                 [numKinds]*obs.Counter
}

// hit records a lookup served from the LRU, split by key kind.
func (c *Cache) hit(key string) {
	c.stats.Hits++
	c.cHits.Inc()
	k := KindOf(key)
	switch k {
	case KindBitmap:
		c.stats.BitmapHits++
	case KindPrice:
		c.stats.PriceHits++
	case KindTemplate:
		c.stats.TemplateHits++
	case KindApprox:
		c.stats.ApproxHits++
	}
	c.cKindHits[k].Inc()
}

// miss records a lookup that must compute, split by key kind.
func (c *Cache) miss(key string) {
	c.stats.Misses++
	c.cMisses.Inc()
	k := KindOf(key)
	switch k {
	case KindBitmap:
		c.stats.BitmapMisses++
	case KindPrice:
		c.stats.PriceMisses++
	case KindTemplate:
		c.stats.TemplateMisses++
	case KindApprox:
		c.stats.ApproxMisses++
	}
	c.cKindMisses[k].Inc()
}

// AttachObs mirrors the cache counters into an obs registry under the
// quotecache_* names, so /metrics reports cache effectiveness without
// polling Stats. Safe to call with a nil registry (no-op counters).
func (c *Cache) AttachObs(r *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cHits = r.Counter("quotecache_hits")
	c.cMisses = r.Counter("quotecache_misses")
	c.cCoalesced = r.Counter("quotecache_coalesced_waits")
	c.cEvictions = r.Counter("quotecache_evictions")
	for k, name := range map[Kind]string{
		KindBitmap: "bitmap", KindPrice: "price", KindTemplate: "template",
		KindApprox: "approx",
	} {
		c.cKindHits[k] = r.Counter("quotecache_" + name + "_hits")
		c.cKindMisses[k] = r.Counter("quotecache_" + name + "_misses")
	}
}

type entry struct {
	key string
	val any
}

// flight is one in-progress computation. done is closed after val/err
// are written, so waiters read them without further synchronization.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New creates a cache holding at most capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Get returns the cached value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hit(key)
		return el.Value.(*entry).val, true
	}
	c.miss(key)
	return nil, false
}

// Put inserts (or refreshes) a value, evicting the least recently used
// entry beyond capacity. Used by batch pricing, which computes many keys
// in one shared sweep and cannot lead one flight per key.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, val)
}

func (c *Cache) putLocked(key string, val any) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.entries, last.Value.(*entry).key)
		c.stats.Evictions++
		c.cEvictions.Inc()
	}
}

// Do returns the cached value for key, or computes it by calling fn
// exactly once across all concurrent callers (singleflight): the first
// misser becomes the leader and runs fn, later callers for the same key
// block on the leader's result. A successful result is inserted into the
// LRU; an error is handed to every waiter of that flight and nothing is
// cached, so the next caller retries.
//
// ctx governs only THIS caller's participation, never the shared
// computation: a waiter whose own context is cancelled stops waiting and
// returns its ctx.Err() (the leader keeps computing for everyone else),
// and a waiter whose leader was cancelled does NOT inherit that
// cancellation — it retries the lookup and, being first, becomes the new
// leader under its own context. Cancelled computations cache nothing, so
// a cancellation can never poison an entry.
func (c *Cache) Do(ctx context.Context, key string, fn func() (any, error)) (any, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.ll.MoveToFront(el)
			c.hit(key)
			v := el.Value.(*entry).val
			c.mu.Unlock()
			return v, nil
		}
		if f, ok := c.flights[key]; ok {
			c.stats.CoalescedWaits++
			c.cCoalesced.Inc()
			c.mu.Unlock()
			select {
			case <-ctx.Done():
				// Abandon the wait; the flight continues without us.
				return nil, ctx.Err()
			case <-f.done:
			}
			if f.err != nil && isContextErr(f.err) {
				// The leader died of ITS cancellation, not a pricing
				// failure. Our context is live (checked above), so take
				// over: loop back and lead a fresh flight.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				continue
			}
			return f.val, f.err
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.miss(key)
		c.mu.Unlock()

		f.val, f.err = fn()

		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil {
			c.putLocked(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
		return f.val, f.err
	}
}

// isContextErr reports whether err is (or wraps) a context cancellation
// or deadline error — the errors a flight leader's private context can
// inject into a shared computation.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Invalidate drops every cached entry (in-flight computations finish and
// insert their results afterwards; their keys embed the epoch counters,
// so a configuration change never resurrects a stale price).
func (c *Cache) Invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
}
