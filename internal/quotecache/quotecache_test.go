package quotecache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"qirana/internal/obs"
)

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if v, ok := c.Get("b"); !ok || v.(int) != 2 {
		t.Fatalf("b = %v, %v", v, ok)
	}
	// b is now most recent; inserting d evicts c.
	c.Put("d", 4)
	if _, ok := c.Get("c"); ok {
		t.Fatal("c should have been evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if s := c.Stats(); s.Evictions != 2 {
		t.Fatalf("Evictions = %d, want 2", s.Evictions)
	}
}

func TestDoCachesAndCounts(t *testing.T) {
	c := New(10)
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := c.Do(context.Background(), "k", func() (any, error) { calls++; return 42, nil })
		if err != nil || v.(int) != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss", s)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(10)
	boom := errors.New("boom")
	if _, err := c.Do(context.Background(), "k", func() (any, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("error result must not be cached")
	}
	if v, err := c.Do(context.Background(), "k", func() (any, error) { return 7, nil }); err != nil || v.(int) != 7 {
		t.Fatalf("retry = %v, %v", v, err)
	}
}

func TestCoalescing(t *testing.T) {
	c := New(10)
	var calls atomic.Int64
	gate := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(context.Background(), "k", func() (any, error) {
				calls.Add(1)
				<-gate // hold the flight open so the others coalesce
				return "shared", nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	// Let the leader claim the flight, then release it. The waiters may
	// still be en route, but every one either coalesces or hits the LRU —
	// fn can only run once more if the leader finished before a waiter
	// started, in which case it's an LRU hit, not a second call.
	gate <- struct{}{}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i, v := range vals {
		if v.(string) != "shared" {
			t.Fatalf("vals[%d] = %v", i, v)
		}
	}
	s := c.Stats()
	if s.CoalescedWaits+s.Hits != n-1 {
		t.Fatalf("stats = %+v, want coalesced+hits = %d", s, n-1)
	}
}

func TestDoWaiterAbandonsOnOwnCancel(t *testing.T) {
	c := New(10)
	gate := make(chan struct{})
	started := make(chan struct{})
	go func() {
		c.Do(context.Background(), "k", func() (any, error) {
			close(started)
			<-gate
			return "late", nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, "k", func() (any, error) { return "never", nil })
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return promptly")
	}
	// The flight itself was unaffected: release the leader and the value
	// is cached for everyone.
	close(gate)
	if v, err := c.Do(context.Background(), "k", nil); err != nil || v.(string) != "late" {
		t.Fatalf("flight poisoned by waiter cancellation: %v, %v", v, err)
	}
}

func TestDoFollowerDoesNotInheritLeaderCancellation(t *testing.T) {
	c := New(10)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inFlight := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.Do(leaderCtx, "k", func() (any, error) {
			close(inFlight)
			<-release
			return nil, leaderCtx.Err() // a cancelled sweep returns ctx.Err()
		})
		leaderDone <- err
	}()
	<-inFlight
	followerDone := make(chan error, 1)
	var followerComputed atomic.Bool
	go func() {
		v, err := c.Do(context.Background(), "k", func() (any, error) {
			followerComputed.Store(true)
			return "fresh", nil
		})
		if err == nil && v.(string) != "fresh" {
			t.Errorf("follower got %v", v)
		}
		followerDone <- err
	}()
	// Cancel the leader mid-flight, then let it finish with ctx.Err().
	cancelLeader()
	close(release)
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	if err := <-followerDone; err != nil {
		t.Fatalf("follower inherited leader cancellation: %v", err)
	}
	if !followerComputed.Load() {
		t.Fatal("follower should have taken over as the new leader")
	}
	// And the takeover's (successful) result is cached.
	if v, ok := c.Get("k"); !ok || v.(string) != "fresh" {
		t.Fatalf("takeover result not cached: %v, %v", v, ok)
	}
}

func TestAttachObsMirrorsCounters(t *testing.T) {
	c := New(2)
	r := obs.New()
	c.AttachObs(r)
	c.Do(context.Background(), "k", func() (any, error) { return 1, nil }) // miss
	c.Do(context.Background(), "k", nil)                                   // hit
	c.Put("a", 1)
	c.Put("b", 2) // evicts k or a
	s := r.Snapshot()
	if s.Counters["quotecache_misses"] != 1 || s.Counters["quotecache_hits"] != 1 {
		t.Fatalf("obs counters: %+v", s.Counters)
	}
	if s.Counters["quotecache_evictions"] != 1 {
		t.Fatalf("obs evictions: %+v", s.Counters)
	}
	// Internal stats agree with the mirror.
	if st := c.Stats(); st.Misses != 1 || st.Hits != 1 || st.Evictions != 1 {
		t.Fatalf("stats diverged from obs: %+v", st)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(10)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatalf("Len = %d after Invalidate", c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("entry survived Invalidate")
	}
}

func TestApproxKindCounters(t *testing.T) {
	c := New(8)
	r := obs.New()
	c.AttachObs(r)
	if k := KindOf("a|coverage|1|2|3|fp"); k != KindApprox {
		t.Fatalf("KindOf(a|...) = %v", k)
	}
	c.Get("a|x")                                                             // miss
	c.Do(context.Background(), "a|x", func() (any, error) { return 1, nil }) // miss (leader)
	c.Get("a|x")                                                             // hit
	st := c.Stats()
	if st.ApproxMisses != 2 || st.ApproxHits != 1 {
		t.Fatalf("approx split = hits %d misses %d, want 1/2", st.ApproxHits, st.ApproxMisses)
	}
	s := r.Snapshot()
	if s.Counters["quotecache_approx_hits"] != 1 || s.Counters["quotecache_approx_misses"] != 2 {
		t.Fatalf("obs approx counters: %+v", s.Counters)
	}
}
