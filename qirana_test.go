package qirana

import (
	"math"
	"strings"
	"testing"
)

func worldBroker(t testing.TB, size int) *Broker {
	t.Helper()
	db, err := LoadDataset("world", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBroker(db, 100, Options{SupportSetSize: size, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBrokerQuote(t *testing.T) {
	b := worldBroker(t, 300)
	full, err := b.Quote("SELECT * FROM Country")
	if err != nil {
		t.Fatal(err)
	}
	small, err := b.Quote("SELECT Name FROM Country WHERE ID < 10")
	if err != nil {
		t.Fatal(err)
	}
	if small >= full {
		t.Fatalf("selective query (%g) should cost less than the relation (%g)", small, full)
	}
	if full > 100+1e-9 {
		t.Fatalf("relation cannot cost more than the dataset: %g", full)
	}
}

// TestExample11 walks the paper's running example (Example 1.1): the
// arbitrage orderings the broker must guarantee.
func TestExample11Arbitrage(t *testing.T) {
	b := worldBroker(t, 400)
	// Q1 = count of one gender; Q2 = counts of all genders. Q2 determines
	// Q1, so p(Q1) <= p(Q2). Our world stand-ins: Continent plays gender.
	p1, err := b.Quote("SELECT count(*) FROM Country WHERE Continent = 'Asia'")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Quote("SELECT Continent, count(*) FROM Country GROUP BY Continent")
	if err != nil {
		t.Fatal(err)
	}
	if p1 > p2+1e-9 {
		t.Fatalf("information arbitrage: p(Q1)=%g > p(Q2)=%g", p1, p2)
	}
	// AVG is determined by (SUM, COUNT): p(Q3) <= p(Q2') + p(Q4) with
	// bundle subadditivity.
	p3, err := b.Quote("SELECT AVG(Population) FROM Country")
	if err != nil {
		t.Fatal(err)
	}
	pc, err := b.Quote("SELECT count(*) FROM Country")
	if err != nil {
		t.Fatal(err)
	}
	p4, err := b.Quote("SELECT SUM(Population) FROM Country")
	if err != nil {
		t.Fatal(err)
	}
	if p3 > pc+p4+1e-9 {
		t.Fatalf("arbitrage: p(AVG)=%g > p(COUNT)+p(SUM)=%g", p3, pc+p4)
	}
}

func TestBrokerAskHistory(t *testing.T) {
	b := worldBroker(t, 300)
	res, c1, err := b.Ask("alice", "SELECT Continent, count(*) FROM Country GROUP BY Continent")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 || c1 <= 0 {
		t.Fatalf("first purchase: %d rows, charge %g", res.Len(), c1)
	}
	// The overlapping count query is now free (the paper's Q5 moment).
	_, c2, err := b.Ask("alice", "SELECT count(*) FROM Country WHERE Continent = 'Asia'")
	if err != nil {
		t.Fatal(err)
	}
	if c2 != 0 {
		t.Fatalf("already-covered query should be free, charged %g", c2)
	}
	if math.Abs(b.TotalPaid("alice")-(c1+c2)) > 1e-9 {
		t.Fatalf("TotalPaid mismatch")
	}
	// A different buyer pays full price.
	_, c3, err := b.Ask("bob", "SELECT count(*) FROM Country WHERE Continent = 'Asia'")
	if err != nil {
		t.Fatal(err)
	}
	if c3 <= 0 {
		t.Fatal("bob has no history; the query should cost something")
	}
}

func TestBrokerPricePoints(t *testing.T) {
	b := worldBroker(t, 400)
	err := b.SetPricePoints([]PricePoint{
		{SQL: "SELECT * FROM Country", Price: 70},
		{SQL: "SELECT * FROM Tweet", Price: 0}, // unknown table
	})
	if err == nil || !strings.Contains(err.Error(), "unknown relation") {
		t.Fatalf("want compile error, got %v", err)
	}
	if err := b.SetPricePoints([]PricePoint{{SQL: "SELECT * FROM Country", Price: 70}}); err != nil {
		t.Fatal(err)
	}
	p, err := b.Quote("SELECT * FROM Country")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-70) > 0.01 {
		t.Fatalf("price point not honored: %g", p)
	}
}

func TestBrokerBundle(t *testing.T) {
	b := worldBroker(t, 200)
	p, err := b.QuoteBundle(
		"SELECT Name FROM Country WHERE ID < 100",
		"SELECT Population FROM Country WHERE ID < 100",
	)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := b.Quote("SELECT Name FROM Country WHERE ID < 100")
	p2, _ := b.Quote("SELECT Population FROM Country WHERE ID < 100")
	if p > p1+p2+1e-9 {
		t.Fatalf("bundle arbitrage: %g > %g", p, p1+p2)
	}
}

func TestLoadDatasets(t *testing.T) {
	for _, name := range []string{"world", "carcrash", "dblp", "tpch", "ssb"} {
		db, err := LoadDataset(name, 3, smallScale(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if db.TotalRows() == 0 {
			t.Fatalf("%s: empty", name)
		}
	}
	if _, err := LoadDataset("nope", 1, 0); err == nil {
		t.Fatal("unknown dataset should error")
	}
}

func smallScale(name string) float64 {
	switch name {
	case "carcrash":
		return 2000
	case "world":
		return 0
	}
	return 0.001
}

func TestBrokerErrors(t *testing.T) {
	db, _ := LoadDataset("world", 1, 0)
	if _, err := NewBroker(db, 0, Options{}); err == nil {
		t.Fatal("zero price must be rejected")
	}
	b := worldBroker(t, 100)
	if _, err := b.Quote("SELEC nonsense"); err == nil {
		t.Fatal("syntax error must surface")
	}
	if _, err := b.Quote("SELECT missing FROM Country"); err == nil {
		t.Fatal("unknown column must surface")
	}
}
