package qirana

import (
	"context"
	"errors"
	"fmt"
	"time"

	"qirana/internal/durable"
	"qirana/internal/obs"
	"qirana/internal/pricing"
	"qirana/internal/sqlengine/exec"
	"qirana/internal/support"
)

// This file is the broker's cluster surface: the shard-side sweep slice
// protocol plus the router-side RemoteSweeper hook.
//
// Sharded pricing splits ONE support-set sweep across N workers, each
// walking a contiguous slice [Lo, Hi) of the global element index. The
// design invariant is bit-identity: shards never sum floats. They return
// per-element raw material — disagreement bits or output hashes — for
// their slice only, and the router concatenates the slices in shard
// order (which IS global index order) and runs the exact single-node
// fold (PriceFromDisagreements / EntropyPriceFromHashes) over the
// reassembled vector. Every per-element decision is mask-independent
// (the same property history-aware pricing already relies on), so the
// concatenation is bit-for-bit the vector a local sweep would produce,
// and the price, the charge and the Stats follow.
//
// Stats fold by addition: every counter is per-element and masked
// elements contribute nothing, so disjoint covering slices sum exactly
// to one full sweep's Stats.

// ErrShardUnavailable marks a sweep that failed because a shard was
// unreachable, timed out, or answered 5xx. It is retryable: the HTTP
// layer maps it to 503 + Retry-After, same as ErrDurability.
var ErrShardUnavailable = errors.New("shard unavailable")

// ErrReadOnly is returned by state mutations (purchases, weight refits,
// checkpoints) on a read-only broker — the serving mode of shard workers
// and un-promoted standbys, which must never fork the cluster's buyer
// ledger. It is retryable against the cluster (the router or promoted
// leader accepts the write), so the HTTP layer maps it to 503.
var ErrReadOnly = errors.New("broker is read-only")

// ErrSupportMismatch marks a sweep request whose support-set generation
// or content checksum disagrees with the shard's. Prices folded across
// mismatched sets would be garbage, so the shard refuses; the operator
// rebuilds the cluster from one saved support set.
var ErrSupportMismatch = errors.New("support set mismatch")

// SweepSpec describes how a remote sweep should run. It replaced the
// old positional (bundle, supportGen) arguments when approximate
// pricing landed: a sweep now also carries an optional sample spec, and
// threading a third and fourth positional flag through every
// implementation was the wrong shape for an interface expected to grow.
type SweepSpec struct {
	// Bundle prices the sqls as ONE bundle (one output vector); false
	// sweeps each query independently (one vector per query, still in
	// one shared pass).
	Bundle bool
	// SupportGen is the caller's support-set generation, forwarded so a
	// stale router and a resampled shard can never silently mix sets.
	SupportGen uint64
	// SampleFrac in (0, 1) requests a sampled sweep: every shard
	// computes the SAME deterministic stratified mask
	// (support.SampleMask over the full index space, keyed by
	// SampleSeed and SupportGen) and sweeps only the sampled elements
	// of its slice. 0 (or ≥1) sweeps everything. Unsampled positions of
	// the returned vectors are zero; approximate folds read only
	// sampled positions.
	SampleFrac float64
	// SampleSeed keys the sample mask. Shards use the caller's seed,
	// never their own, so the reassembled vector has exactly the
	// positions the caller's mask selects.
	SampleSeed int64
}

// Sampled reports whether the spec asks for a strict sub-sample.
func (s SweepSpec) Sampled() bool { return s.SampleFrac > 0 && s.SampleFrac < 1 }

// RemoteSweeper replaces the broker's local cold sweep with a remote
// fan-out. Implementations (internal/shard.Fanout) partition [0, |S|)
// across shards, collect SweepSliceResponses, and reassemble the
// per-element vectors in global index order.
type RemoteSweeper interface {
	// SweepBits returns the full-length disagreement bitmap(s): one per
	// query, or exactly one in bundle mode. Stats align with the outer
	// slice.
	SweepBits(ctx context.Context, sqls []string, spec SweepSpec) ([][]bool, []Stats, error)
	// SweepHashes returns the full-length per-element output-hash
	// vector(s) for the entropy pricing functions, shaped like SweepBits.
	SweepHashes(ctx context.Context, sqls []string, spec SweepSpec) ([][]uint64, []Stats, error)
}

// DegradedSweeper is the optional fault-tolerant extension of
// RemoteSweeper (implemented by internal/shard.Fanout). Where the exact
// sweeps are all-or-nothing, the degraded variants return whatever
// slices answered within the retry budget plus an element-level live
// mask; dead slices are zero-filled and excluded from Stats. The broker
// feeds the mask into the PR 9 estimators as if the dead slices were
// simply unsampled, which prices the missing weight at its upper bound
// — a sound, arbitrage-safe over-quote (DESIGN.md §14). Implementations
// must return an error (never an all-false mask) when no slice at all
// survived.
type DegradedSweeper interface {
	RemoteSweeper
	SweepBitsDegraded(ctx context.Context, sqls []string, spec SweepSpec) ([][]bool, []Stats, []bool, error)
	SweepHashesDegraded(ctx context.Context, sqls []string, spec SweepSpec) ([][]uint64, []Stats, []bool, error)
}

// RetryAfterHinter is implemented by errors that know how long the
// failing component needs before a retry could succeed — e.g. the
// fan-out's circuit-breaker rejection carrying its remaining cooldown.
// The HTTP layer surfaces the hint as the Retry-After header and the
// error envelope's retry_after field.
type RetryAfterHinter interface {
	RetryAfterHint() time.Duration
}

// RetryAfterHint extracts the retry hint from anywhere in err's chain.
func RetryAfterHint(err error) (time.Duration, bool) {
	var h RetryAfterHinter
	if errors.As(err, &h) {
		return h.RetryAfterHint(), true
	}
	return 0, false
}

// SetRemoteSweeper installs (or, with nil, removes) the broker's remote
// sweep fan-out. With a sweeper installed the broker becomes a router:
// cold quotes and purchase sweeps fan out to shards while cache keys,
// purchase folds, the ledger and served prices are unchanged. If the
// sweeper can carry metrics (AttachObs), it is wired into the broker's
// registry so fan-out counters and latencies surface in Metrics().
func (b *Broker) SetRemoteSweeper(rs RemoteSweeper) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweeper = rs
	if a, ok := rs.(interface{ AttachObs(*obs.Registry) }); ok && rs != nil {
		a.AttachObs(b.obs)
	}
}

// SetReadOnly flips the broker's read-only mode (see ErrReadOnly).
func (b *Broker) SetReadOnly(on bool) {
	b.mu.Lock()
	b.readOnly = on
	b.mu.Unlock()
}

// SupportGen returns the support set's generation counter (bumped by
// every resample). Cluster nodes compare it before folding sweeps.
func (b *Broker) SupportGen() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.supportGen
}

// SupportChecksum returns the support set's content checksum. Two
// brokers with equal checksums price against element-for-element
// identical support sets.
func (b *Broker) SupportChecksum() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.supportSum
}

// SweepSliceRequest asks a shard to sweep its slice [Lo, Hi) of the
// support set for one bundle or batch of queries.
type SweepSliceRequest struct {
	// SQLs are the queries to sweep. At least one is required.
	SQLs []string `json:"sqls"`
	// Bundle sweeps all SQLs as one bundle (one output vector); false
	// sweeps each independently.
	Bundle bool `json:"bundle"`
	// Hashes selects output-hash vectors (entropy pricing) instead of
	// disagreement bitmaps.
	Hashes bool `json:"hashes"`
	// Lo and Hi bound the slice in global element indexes: [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// SupportGen and SupportSum identify the support set the caller
	// prices against; the shard refuses on any mismatch.
	SupportGen uint64 `json:"support_gen"`
	SupportSum uint64 `json:"support_sum"`
	// SampleFrac in (0, 1) sweeps only the deterministic stratified
	// sample of the support set (support.SampleMask keyed by SampleSeed
	// and SupportGen) intersected with [Lo, Hi); the response vectors
	// stay slice-width with unsampled positions zero. Absent (0) sweeps
	// the whole slice — the wire format is unchanged for exact traffic.
	SampleFrac float64 `json:"sample_frac,omitempty"`
	SampleSeed int64   `json:"sample_seed,omitempty"`
}

// SweepSliceResponse carries one shard's slice of the sweep. Bits and
// Hashes cover ONLY [Lo, Hi), in global index order; the router drops
// them into the full vector at offset Lo.
type SweepSliceResponse struct {
	SupportGen uint64 `json:"support_gen"`
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
	// Bits holds Hi-Lo disagreement bits per entry, packed LSB-first
	// (durable.PackBits layout); one entry per query, or one for the
	// bundle. Empty when Hashes was requested.
	Bits [][]byte `json:"bits,omitempty"`
	// Hashes holds Hi-Lo per-element output hashes per entry. uint64
	// survives the JSON round-trip exactly: encoding/json emits the
	// integer digits and decodes them straight into the uint64 field.
	Hashes [][]uint64 `json:"hashes,omitempty"`
	// Stats aligns with Bits/Hashes: this slice's share of the sweep
	// stats (summing all shards' reproduces the single-node Stats).
	Stats []Stats `json:"stats"`
	// Rows is how many support elements this call actually swept. Warm
	// slices (shard-local cache hits) report 0.
	Rows int `json:"rows"`
}

// sliceBitsEntry is one query's cached slice sweep: the packed bits of
// [lo, hi) plus that slice's share of the Stats.
type sliceBitsEntry struct {
	packed []byte
	stats  pricing.Stats
}

// sliceHashEntry is the entropy-side equivalent of sliceBitsEntry.
type sliceHashEntry struct {
	hashes []uint64
	stats  pricing.Stats
}

// SweepSlice serves one shard sweep: it walks ONLY the elements in
// [req.Lo, req.Hi) (the rest are masked out exactly like history-aware
// pricing masks owned elements) and returns the slice's bits or hashes.
// Slices are cached in the shard's quote cache under keys that embed
// the slice bounds and the same generation/version discipline as local
// quote keys, so repeated router misses for the same query cost zero
// rows (Rows reports the true number swept).
func (b *Broker) SweepSlice(ctx context.Context, req SweepSliceRequest) (*SweepSliceResponse, error) {
	b.obs.Add("shard_sweep_requests", 1)
	defer b.obs.Timer("shard_sweep")()
	if len(req.SQLs) == 0 {
		return nil, fmt.Errorf("sweep request carries no queries")
	}
	qs, err := b.compileAll(req.SQLs)
	if err != nil {
		return nil, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if req.SupportGen != b.supportGen || req.SupportSum != b.supportSum {
		return nil, fmt.Errorf("%w: request prices gen=%d sum=%016x, shard holds gen=%d sum=%016x",
			ErrSupportMismatch, req.SupportGen, req.SupportSum, b.supportGen, b.supportSum)
	}
	size := b.engine.Set.Size()
	if req.Lo < 0 || req.Hi < req.Lo || req.Hi > size {
		return nil, fmt.Errorf("sweep slice [%d, %d) out of range for support set of size %d", req.Lo, req.Hi, size)
	}
	live := make([]bool, size)
	for i := req.Lo; i < req.Hi; i++ {
		live[i] = true
	}
	// A sampled sweep intersects the slice with the caller's global
	// sample mask — recomputed here from (frac, seed, gen), identical on
	// every shard — and caches under sample-suffixed keys so exact and
	// sampled slices never alias. width stays the full slice width (the
	// wire vectors keep their shape); rows/stats count sampled elements.
	sampleSuffix := ""
	sampledWidth := req.Hi - req.Lo
	if req.SampleFrac > 0 && req.SampleFrac < 1 {
		mask := support.SampleMask(size, req.SampleFrac, req.SampleSeed, req.SupportGen)
		sampledWidth = 0
		for i := req.Lo; i < req.Hi; i++ {
			live[i] = mask[i]
			if mask[i] {
				sampledWidth++
			}
		}
		sampleSuffix = fmt.Sprintf("|smp:%g,%d", req.SampleFrac, req.SampleSeed)
	}
	resp := &SweepSliceResponse{SupportGen: b.supportGen, Lo: req.Lo, Hi: req.Hi}
	width := sampledWidth
	// rows counts elements swept by THIS call: the counters live inside
	// the compute closures, which cache hits and coalesced flights skip.
	rows := 0
	switch {
	case req.Hashes && req.Bundle:
		key := fmt.Sprintf("sh|b|%d,%d|%s", req.Lo, req.Hi, b.disKey(qs)) + sampleSuffix
		v, _, err := b.cached(ctx, key, func() (any, error) {
			b.engineMu.Lock()
			defer b.engineMu.Unlock()
			b.refreshEngineLocked()
			b.engine.LastStats = pricing.Stats{}
			elems, _, err := b.engine.OutputHashesLiveCtx(ctx, qs, live)
			if err != nil {
				return nil, err
			}
			rows += width
			b.obs.Add("shard_rows_swept", uint64(width))
			return sliceHashEntry{hashes: append([]uint64(nil), elems[req.Lo:req.Hi]...), stats: b.engine.LastStats}, nil
		})
		if err != nil {
			return nil, err
		}
		ent := v.(sliceHashEntry)
		resp.Hashes = [][]uint64{ent.hashes}
		resp.Stats = []Stats{ent.stats}

	case req.Hashes:
		entries, _, err := batchEntries(ctx, b, qs,
			func(qs []*exec.Query) string {
				return fmt.Sprintf("sh|m|%d,%d|%s", req.Lo, req.Hi, b.disKey(qs)) + sampleSuffix
			},
			func(ctx context.Context, miss []*exec.Query) ([]sliceHashEntry, error) {
				b.engineMu.Lock()
				b.refreshEngineLocked()
				elems, _, err := b.engine.OutputHashesMultiLiveCtx(ctx, miss, live)
				b.engineMu.Unlock()
				if err != nil {
					return nil, err
				}
				rows += width * len(miss)
				b.obs.Add("shard_rows_swept", uint64(width*len(miss)))
				out := make([]sliceHashEntry, len(miss))
				for x := range miss {
					out[x] = sliceHashEntry{
						hashes: append([]uint64(nil), elems[x][req.Lo:req.Hi]...),
						// The single-node batch path reports Naive=|S| per
						// query; this slice's share is its width.
						stats: pricing.Stats{Naive: width},
					}
				}
				return out, nil
			})
		if err != nil {
			return nil, err
		}
		resp.Hashes = make([][]uint64, len(qs))
		resp.Stats = make([]Stats, len(qs))
		for j, ent := range entries {
			resp.Hashes[j] = ent.hashes
			resp.Stats[j] = ent.stats
		}

	case req.Bundle:
		key := fmt.Sprintf("ss|b|%d,%d|%s", req.Lo, req.Hi, b.disKey(qs)) + sampleSuffix
		v, _, err := b.cached(ctx, key, func() (any, error) {
			b.engineMu.Lock()
			defer b.engineMu.Unlock()
			b.refreshEngineLocked()
			dis, err := b.engine.DisagreementsCtx(ctx, qs, live)
			if err != nil {
				return nil, err
			}
			rows += width
			b.obs.Add("shard_rows_swept", uint64(width))
			return sliceBitsEntry{packed: durable.PackBits(dis[req.Lo:req.Hi]), stats: b.engine.LastStats}, nil
		})
		if err != nil {
			return nil, err
		}
		ent := v.(sliceBitsEntry)
		resp.Bits = [][]byte{ent.packed}
		resp.Stats = []Stats{ent.stats}

	default:
		entries, _, err := batchEntries(ctx, b, qs,
			func(qs []*exec.Query) string {
				return fmt.Sprintf("ss|m|%d,%d|%s", req.Lo, req.Hi, b.disKey(qs)) + sampleSuffix
			},
			func(ctx context.Context, miss []*exec.Query) ([]sliceBitsEntry, error) {
				b.engineMu.Lock()
				b.refreshEngineLocked()
				res, stats, err := b.engine.DisagreementsMultiLiveCtx(ctx, miss, live)
				b.engineMu.Unlock()
				if err != nil {
					return nil, err
				}
				rows += width * len(miss)
				b.obs.Add("shard_rows_swept", uint64(width*len(miss)))
				out := make([]sliceBitsEntry, len(miss))
				for x := range miss {
					out[x] = sliceBitsEntry{packed: durable.PackBits(res[x][req.Lo:req.Hi]), stats: stats[x]}
				}
				return out, nil
			})
		if err != nil {
			return nil, err
		}
		resp.Bits = make([][]byte, len(qs))
		resp.Stats = make([]Stats, len(qs))
		for j, ent := range entries {
			resp.Bits[j] = ent.packed
			resp.Stats[j] = ent.stats
		}
	}
	resp.Rows = rows
	return resp, nil
}
