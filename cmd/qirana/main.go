// Command qirana is an interactive query-pricing broker shell: it loads
// one of the benchmark datasets, assigns it a total price, and answers
// buyer queries with history-aware charges — the end-to-end flow of the
// paper's Figure 3.
//
// Usage:
//
//	qirana -dataset world -price 100
//	qirana -dataset world -load support.json   # reuse a saved support set
//
// Shell commands:
//
//	quote <sql>           price a query (up-front, history-oblivious)
//	approx <err> <sql>    sampled upper-bound quote with target error <err>
//	ask <sql>             buy a query: print answer and incremental charge
//	prepare <sql>         prepare a $1-style template; prints its handle
//	exec <n> <params...>  buy an instance of prepared statement #n
//	                      (params: integers, floats, or 'quoted strings')
//	buyer <name>          switch buyer account (default "buyer1")
//	func <name>           switch pricing function (coverage, shannon, qentropy, gain)
//	point <price> <sql>   add a seller price point and refit weights
//	refund <sql>          buy under the refund settlement model
//	save <path>           persist the support set (prices survive restarts)
//	paid                  show the current buyer's total payments
//	stats                 show how the last price was computed
//	schema                list relations and attributes
//	help / quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"qirana"
)

// parseParams turns whitespace-separated REPL tokens into typed SQL
// values: integers, floats, 'quoted strings' (single quotes optional —
// a bare non-numeric token is a string).
func parseParams(rest string) []qirana.Value {
	var out []qirana.Value
	for _, tok := range strings.Fields(rest) {
		switch {
		case strings.HasPrefix(tok, "'"):
			out = append(out, qirana.NewString(strings.Trim(tok, "'")))
		default:
			if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
				out = append(out, qirana.NewInt(i))
			} else if f, err := strconv.ParseFloat(tok, 64); err == nil {
				out = append(out, qirana.NewFloat(f))
			} else {
				out = append(out, qirana.NewString(tok))
			}
		}
	}
	return out
}

func main() {
	var (
		dataset = flag.String("dataset", "world", "dataset: world, carcrash, dblp, tpch, ssb")
		price   = flag.Float64("price", 100, "price of the full dataset")
		size    = flag.Int("support", 1000, "support set size")
		scale   = flag.Float64("scale", 0, "dataset scale (0 = small default)")
		seed    = flag.Int64("seed", 1, "generator seed")
		script  = flag.String("e", "", "run semicolon-separated shell commands non-interactively and exit")
		load    = flag.String("load", "", "load a support set saved with the 'save' command instead of sampling")
		workers = flag.Int("workers", 0, "parallel pricing workers (0 or 1 = serial, capped at GOMAXPROCS)")
	)
	flag.Parse()

	db, err := qirana.LoadDataset(*dataset, *seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("loaded %s: %d tuples across %d relations\n", *dataset, db.TotalRows(), len(db.Schema.Relations))
	var broker *qirana.Broker
	if *load != "" {
		f, ferr := os.Open(*load)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, ferr)
			os.Exit(2)
		}
		broker, err = qirana.NewBrokerFromSupport(db, *price, f, qirana.Options{Workers: *workers})
		f.Close()
	} else {
		broker, err = qirana.NewBroker(db, *price, qirana.Options{SupportSetSize: *size, Seed: *seed, Workers: *workers})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("broker ready: dataset price $%.2f, |S| = %d\n", *price, broker.SupportSetSize())
	fmt.Println(`type "help" for commands`)

	buyer := "buyer1"
	fn := qirana.WeightedCoverage
	ctx := context.Background()
	var points []qirana.PricePoint
	var prepared []*qirana.Stmt

	var scripted []string
	if *script != "" {
		scripted = strings.Split(*script, ";;")
	}
	scriptIdx := 0
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		var line string
		if scripted != nil {
			if scriptIdx >= len(scripted) {
				return
			}
			line = strings.TrimSpace(scripted[scriptIdx])
			scriptIdx++
			fmt.Printf("%s> %s\n", buyer, line)
		} else {
			fmt.Printf("%s> ", buyer)
			if !sc.Scan() {
				return
			}
			line = strings.TrimSpace(sc.Text())
		}
		if line == "" {
			continue
		}
		cmd, rest, _ := strings.Cut(line, " ")
		rest = strings.TrimSpace(rest)
		switch strings.ToLower(cmd) {
		case "quit", "exit":
			return
		case "help":
			fmt.Println("quote <sql> | approx <err> <sql> | ask <sql> | prepare <sql> | exec <n> <params...> | buyer <name> | func <name> | point <price> <sql> | paid | stats | schema | quit")
		case "buyer":
			if rest == "" {
				fmt.Println("usage: buyer <name>")
				continue
			}
			buyer = rest
		case "func":
			switch strings.ToLower(rest) {
			case "coverage":
				fn = qirana.WeightedCoverage
			case "shannon":
				fn = qirana.ShannonEntropy
			case "qentropy":
				fn = qirana.QEntropy
			case "gain":
				fn = qirana.UniformEntropyGain
			default:
				fmt.Println("functions: coverage, shannon, qentropy, gain")
				continue
			}
			fmt.Println("pricing function:", fn)
		case "quote":
			resp, err := broker.Price(ctx, qirana.PriceRequest{SQLs: []string{rest}, Func: &fn})
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("price: $%.2f\n", resp.Total)
		case "approx":
			// approx <max_error> <sql>: sampled upper-bound quote.
			meStr, sql, _ := strings.Cut(rest, " ")
			me, err := strconv.ParseFloat(meStr, 64)
			if err != nil || sql == "" {
				fmt.Println("usage: approx <max_error in (0,1]> <sql>")
				continue
			}
			resp, err := broker.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}, Func: &fn, MaxError: me})
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if est := resp.PerQuery[0].Estimate; est != nil {
				fmt.Printf("price: $%.2f (upper bound; point $%.2f ± $%.2f from a %.0f%% sample)\n",
					resp.Total, est.Point, est.CI, est.SampleFrac*100)
			} else {
				fmt.Printf("price: $%.2f\n", resp.Total)
			}
		case "ask":
			rec, err := broker.Purchase(ctx, qirana.PurchaseRequest{Buyer: buyer, SQL: rest})
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(rec.Result.String())
			fmt.Printf("(%d rows) charged $%.2f, total paid $%.2f\n", rec.Result.Len(), rec.Net, broker.TotalPaid(buyer))
		case "prepare":
			s, err := broker.Prepare(ctx, rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			prepared = append(prepared, s)
			fmt.Printf("prepared #%d (%d params): %s\n", len(prepared), s.NumParams(), s.Template())
		case "exec":
			idxStr, paramStr, _ := strings.Cut(rest, " ")
			n, err := strconv.Atoi(idxStr)
			if err != nil || n < 1 || n > len(prepared) {
				fmt.Printf("usage: exec <n> <params...> (have %d prepared statements)\n", len(prepared))
				continue
			}
			s := prepared[n-1]
			params := parseParams(paramStr)
			price, err := s.PriceWith(ctx, fn, params...)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			rec, err := s.Purchase(ctx, buyer, params...)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(rec.Result.String())
			cachedMark := ""
			if price.PerQuery[0].Cached {
				cachedMark = " (cached quote)"
			}
			fmt.Printf("(%d rows) price $%.2f%s, charged $%.2f, total paid $%.2f\n",
				rec.Result.Len(), price.Total, cachedMark, rec.Net, broker.TotalPaid(buyer))
		case "point":
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) != 2 {
				fmt.Println("usage: point <price> <sql>")
				continue
			}
			p, err := strconv.ParseFloat(parts[0], 64)
			if err != nil {
				fmt.Println("bad price:", err)
				continue
			}
			points = append(points, qirana.PricePoint{SQL: parts[1], Price: p})
			if err := broker.SetPricePoints(points); err != nil {
				fmt.Println("error:", err)
				points = points[:len(points)-1]
				continue
			}
			fmt.Printf("fitted %d price point(s)\n", len(points))
		case "refund":
			rec, err := broker.Purchase(ctx, qirana.PurchaseRequest{Buyer: buyer, SQL: rest, Refund: true})
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(rec.Result.String())
			fmt.Printf("(%d rows) charged $%.2f, refunded $%.2f, net $%.2f\n",
				rec.Result.Len(), rec.Gross, rec.Refund, rec.Gross-rec.Refund)
		case "save":
			if rest == "" {
				fmt.Println("usage: save <path>")
				continue
			}
			f, err := os.Create(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			if err := broker.SaveSupportSet(f); err != nil {
				fmt.Println("error:", err)
				f.Close()
				continue
			}
			if err := f.Close(); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println("support set saved to", rest)
		case "paid":
			fmt.Printf("%s has paid $%.2f of $%.2f\n", buyer, broker.TotalPaid(buyer), broker.TotalPrice())
		case "stats":
			s := broker.LastStats()
			fmt.Printf("last pricing: %d static, %d batched, %d full runs, %d naive executions\n",
				s.Static, s.Batched, s.FullRuns, s.Naive)
			c := broker.QuoteCacheStats()
			fmt.Printf("quote cache: %d hits, %d misses, %d coalesced waits, %d evictions (%d entries)\n",
				c.Hits, c.Misses, c.CoalescedWaits, c.Evictions, broker.QuoteCacheLen())
			fmt.Printf("  by kind: template %d/%d, bitmap %d/%d, price %d/%d (hits/misses)\n",
				c.TemplateHits, c.TemplateMisses, c.BitmapHits, c.BitmapMisses, c.PriceHits, c.PriceMisses)
		case "schema":
			for _, rel := range db.Schema.Relations {
				cols := make([]string, len(rel.Attributes))
				for i, a := range rel.Attributes {
					cols[i] = a.Name
				}
				fmt.Printf("%s(%s)\n", rel.Name, strings.Join(cols, ", "))
			}
		default:
			// Bare SQL is treated as "ask".
			if strings.HasPrefix(strings.ToUpper(cmd), "SELECT") {
				rec, err := broker.Purchase(ctx, qirana.PurchaseRequest{Buyer: buyer, SQL: line})
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Print(rec.Result.String())
				fmt.Printf("(%d rows) charged $%.2f\n", rec.Result.Len(), rec.Net)
				continue
			}
			fmt.Printf("unknown command %q (try help)\n", cmd)
		}
	}
}
