// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all                 # every experiment, CI scale
//	experiments -exp fig5a,fig5b -paper  # paper-scale scalability runs
//	experiments -exp fig2 -support 1000 -ssb-sf 0.01
//
// Each experiment prints the rows/series the corresponding paper artifact
// reports; EXPERIMENTS.md records the expected shapes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"qirana/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "comma-separated experiment ids (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		paper   = flag.Bool("paper", false, "use the paper's scales (slow: SF 1, |S|=100000)")
		seed    = flag.Int64("seed", 1, "generator seed")
		support = flag.Int("support", 0, "override world support set size")
		big     = flag.Int("big-support", 0, "override SSB/TPC-H support set size")
		ssbSF   = flag.Float64("ssb-sf", 0, "override SSB scale factor")
		tpchSF  = flag.Float64("tpch-sf", 0, "override TPC-H scale factor")
		dblpSF  = flag.Float64("dblp-sf", 0, "override DBLP scale")
		crashN  = flag.Int("crash-rows", 0, "override car crash row count")
		uniform = flag.Int("uniform-support", 0, "override uniform support set size")
		csvDir  = flag.String("csv", "", "also write each report's tables/series as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Desc)
		}
		return
	}

	cfg := harness.DefaultConfig()
	if *paper {
		cfg = harness.PaperConfig()
	}
	cfg.Seed = *seed
	if *support > 0 {
		cfg.WorldSupport = *support
	}
	if *big > 0 {
		cfg.BigSupport = *big
	}
	if *ssbSF > 0 {
		cfg.SSBScale = *ssbSF
	}
	if *tpchSF > 0 {
		cfg.TPCHScale = *tpchSF
	}
	if *dblpSF > 0 {
		cfg.DBLPScale = *dblpSF
	}
	if *crashN > 0 {
		cfg.CrashRows = *crashN
	}
	if *uniform > 0 {
		cfg.UniformSupport = *uniform
	}

	var ids []string
	if *exp == "all" {
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exp, ",")
	}

	for _, id := range ids {
		e, ok := harness.Lookup(strings.TrimSpace(id))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		rep.Render(os.Stdout)
		if *csvDir != "" {
			if err := rep.WriteCSV(*csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "%s: write csv: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
	}
}
