// Command datagen dumps the synthetic benchmark datasets as CSV for
// inspection or for loading into an external DBMS.
//
// Usage:
//
//	datagen -dataset world -out /tmp/world    # one CSV file per relation
//	datagen -dataset tpch -scale 0.01 -out /tmp/tpch
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"qirana"
)

func main() {
	var (
		dataset = flag.String("dataset", "world", "dataset: world, carcrash, dblp, tpch, ssb")
		scale   = flag.Float64("scale", 0, "dataset scale (0 = small default)")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	db, err := qirana.LoadDataset(*dataset, *seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, rel := range db.Schema.Relations {
		path := filepath.Join(*out, strings.ToLower(rel.Name)+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := csv.NewWriter(f)
		header := make([]string, len(rel.Attributes))
		for i, a := range rel.Attributes {
			header[i] = a.Name
		}
		if err := w.Write(header); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t := db.Table(rel.Name)
		row := make([]string, len(rel.Attributes))
		for _, r := range t.Rows {
			for i, v := range r {
				row[i] = v.String()
			}
			if err := w.Write(row); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		w.Flush()
		if err := w.Error(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d rows)\n", path, t.Len())
	}
}
