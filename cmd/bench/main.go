// Command bench times the pricing-engine benchmark groups the paper's
// Figures 4d, 5a and 5b measure and writes the results as machine-readable
// JSON (default BENCH_pricing.json), so successive PRs can track perf
// deltas without parsing `go test -bench` output.
//
// Every pricing benchmark runs at each requested worker count (default
// "1,numcpu" — the serial baseline and the parallel engine). Worker counts
// clamp to GOMAXPROCS inside the engine, so on a single-core host the two
// settings coincide; the JSON records GOMAXPROCS so readers can tell.
//
// Usage:
//
//	bench                          # CI scale, BENCH_pricing.json
//	bench -groups fig5a -workers 1,2,4 -out /tmp/bench.json
//	bench -support 200 -min-time 200ms   # quicker, noisier
//	bench -compare BENCH_old.json  # per-group speedup table; exit 2 on
//	                               # a >20% regression vs the old report
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qirana"
	"qirana/internal/datagen"
	"qirana/internal/pricing"
	"qirana/internal/shard"
	"qirana/internal/sqlengine/exec"
	"qirana/internal/storage"
	"qirana/internal/support"
	"qirana/internal/workload"
)

type result struct {
	Group   string  `json:"group"`
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	Iters   int     `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
}

type report struct {
	GeneratedUnix int64    `json:"generated_unix"`
	GoVersion     string   `json:"go_version"`
	GOMAXPROCS    int      `json:"gomaxprocs"`
	NumCPU        int      `json:"num_cpu"`
	SupportSize   int      `json:"support_size"`
	SSBScale      float64  `json:"ssb_scale"`
	TPCHScale     float64  `json:"tpch_scale"`
	MinTime       string   `json:"min_time"`
	Results       []result `json:"results"`
}

type runner struct {
	minTime time.Duration
	maxIter int
	reps    int
	out     []result
}

// measure times op and records it under group/name/workers. Each of the
// reps repetitions runs op for enough iterations to fill minTime and
// averages; the recorded figure is the minimum average across
// repetitions. Scheduling noise on a shared machine only ever adds
// time, so the minimum is the robust estimator of intrinsic cost — it
// keeps the -compare regression gate from tripping on host steal.
func (r *runner) measure(group, name string, workers int, op func() error) {
	reps := r.reps
	if reps < 1 {
		reps = 1
	}
	best := math.Inf(1)
	bestIters := 0
	for rep := 0; rep < reps; rep++ {
		var (
			iters int
			total time.Duration
		)
		// Always at least one iteration, whatever the flags say.
		for iters == 0 || (total < r.minTime && iters < r.maxIter) {
			start := time.Now()
			if err := op(); err != nil {
				fmt.Fprintf(os.Stderr, "bench %s/%s: %v\n", group, name, err)
				os.Exit(1)
			}
			total += time.Since(start)
			iters++
		}
		if ns := float64(total.Nanoseconds()) / float64(iters); ns < best {
			best, bestIters = ns, iters
		}
	}
	r.out = append(r.out, result{Group: group, Name: name, Workers: workers, Iters: bestIters, NsPerOp: best})
	fmt.Printf("%-8s %-28s workers=%-2d %12.0f ns/op  (%d iters, best of %d)\n", group, name, workers, best, bestIters, reps)
}

func main() {
	var (
		out      = flag.String("out", "BENCH_pricing.json", "output JSON path")
		groups   = flag.String("groups", "fig4d,fig5a,fig5b,quote,delta-tiers,templates,cluster,approx", "comma-separated benchmark groups")
		workersF = flag.String("workers", "1,numcpu", "comma-separated worker counts ('numcpu' allowed)")
		supportN = flag.Int("support", 500, "support set size for the Fig 5 fixtures")
		ssbSF    = flag.Float64("ssb-sf", 0.002, "SSB scale factor")
		tpchSF   = flag.Float64("tpch-sf", 0.002, "TPC-H scale factor")
		minTime  = flag.Duration("min-time", 500*time.Millisecond, "minimum measurement time per benchmark")
		maxIter  = flag.Int("max-iters", 20, "iteration cap per benchmark")
		reps     = flag.Int("reps", 3, "repetitions per benchmark; the best (minimum) average is reported")
		seed     = flag.Int64("seed", 1, "generator seed")
		compare  = flag.String("compare", "", "previous report JSON; print per-group speedups and exit nonzero on a >20% regression")
	)
	flag.Parse()

	workers, err := parseWorkers(*workersF)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	known := []string{"fig4d", "fig5a", "fig5b", "quote", "delta-tiers", "templates", "cluster", "approx"}
	want := map[string]bool{}
	for _, g := range strings.Split(*groups, ",") {
		g = strings.TrimSpace(g)
		ok := false
		for _, k := range known {
			if g == k {
				ok = true
				break
			}
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown benchmark group %q (valid: %s)\n", g, strings.Join(known, ", "))
			os.Exit(1)
		}
		want[g] = true
	}

	r := &runner{minTime: *minTime, maxIter: *maxIter, reps: *reps}

	if want["fig4d"] {
		db := datagen.World(*seed)
		for _, size := range []int{10, 200, 1000} {
			set, err := support.GenerateNeighborhood(db, support.DefaultConfig(size, *seed))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			for _, wq := range []workload.Query{workload.SigmaU(80), workload.PiU(4), workload.JoinU(80), workload.GammaU(20)} {
				q := exec.MustCompile(wq.SQL, db.Schema)
				for _, w := range workers {
					e := pricing.NewEngine(db, set, 100)
					e.Opts.Workers = w
					r.measure("fig4d", fmt.Sprintf("%s/S=%d", wq.Name, size), w, func() error {
						_, err := e.Price(pricing.WeightedCoverage, q)
						return err
					})
				}
			}
		}
	}
	if want["fig5a"] {
		all := workload.SSB()
		scalability(r, "fig5a", datagen.SSB(*seed, *ssbSF), *supportN, *seed, workers,
			[]workload.Query{all[0], all[3], all[6], all[10]})
	}
	if want["fig5b"] {
		byName := map[string]workload.Query{}
		for _, wq := range workload.TPCH() {
			byName[wq.Name] = wq
		}
		scalability(r, "fig5b", datagen.TPCH(*seed, *tpchSF), *supportN, *seed, workers,
			[]workload.Query{byName["Q1"], byName["Q6"], byName["Q12"], byName["Q17"]})
	}
	if want["quote"] {
		quoteThroughput(r, *seed, *supportN)
	}
	if want["delta-tiers"] {
		deltaTiers(r, *seed, *supportN, workers)
	}
	if want["templates"] {
		templatesGroup(r, *seed, *supportN)
	}
	if want["cluster"] {
		clusterGroup(r, *seed, *supportN)
	}
	if want["approx"] {
		approxGroup(r, *seed, *supportN)
	}

	rep := report{
		GeneratedUnix: time.Now().Unix(),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		NumCPU:        runtime.NumCPU(),
		SupportSize:   *supportN,
		SSBScale:      *ssbSF,
		TPCHScale:     *tpchSF,
		MinTime:       minTime.String(),
		Results:       r.out,
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d results)\n", *out, len(r.out))

	if *compare != "" {
		if !compareReports(*compare, rep) {
			os.Exit(2)
		}
	}
}

// regressionTolerance is the slowdown a benchmark may show against the
// baseline before the comparison fails: benchmarks in shared CI runners are
// noisy, so small movements are not actionable.
const regressionTolerance = 1.20

// compareReports prints a per-group speedup table of rep against the report
// stored at path (matching results by group, name and worker count) and
// reports whether the run is free of >20% regressions.
func compareReports(path string, rep report) bool {
	buf, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare: %v\n", err)
		return false
	}
	var old report
	if err := json.Unmarshal(buf, &old); err != nil {
		fmt.Fprintf(os.Stderr, "compare: %s: %v\n", path, err)
		return false
	}
	base := make(map[string]result, len(old.Results))
	for _, res := range old.Results {
		base[fmt.Sprintf("%s|%s|%d", res.Group, res.Name, res.Workers)] = res
	}

	type groupAcc struct {
		n         int
		logSum    float64 // for the geometric-mean speedup
		worst     float64
		worstName string
	}
	groups := make(map[string]*groupAcc)
	var order []string
	var regressions []string
	matched := 0
	for _, res := range rep.Results {
		o, ok := base[fmt.Sprintf("%s|%s|%d", res.Group, res.Name, res.Workers)]
		if !ok || o.NsPerOp <= 0 || res.NsPerOp <= 0 {
			continue
		}
		matched++
		speedup := o.NsPerOp / res.NsPerOp
		g := groups[res.Group]
		if g == nil {
			g = &groupAcc{worst: math.Inf(1)}
			groups[res.Group] = g
			order = append(order, res.Group)
		}
		g.n++
		g.logSum += math.Log(speedup)
		if speedup < g.worst {
			g.worst = speedup
			g.worstName = fmt.Sprintf("%s w=%d", res.Name, res.Workers)
		}
		if res.NsPerOp > o.NsPerOp*regressionTolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s/%s w=%d: %.0f -> %.0f ns/op (%.2fx slower)",
					res.Group, res.Name, res.Workers, o.NsPerOp, res.NsPerOp, res.NsPerOp/o.NsPerOp))
		}
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "compare: no overlapping results with %s\n", path)
		return false
	}

	fmt.Printf("\ncomparison vs %s (%d matched results)\n", path, matched)
	fmt.Printf("%-8s %6s %10s %10s  %s\n", "group", "cases", "geomean", "worst", "worst case")
	for _, name := range order {
		g := groups[name]
		fmt.Printf("%-8s %6d %9.2fx %9.2fx  %s\n",
			name, g.n, math.Exp(g.logSum/float64(g.n)), g.worst, g.worstName)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\n%d regression(s) beyond %.0f%%:\n", len(regressions), (regressionTolerance-1)*100)
		for _, line := range regressions {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
		return false
	}
	fmt.Printf("no regressions beyond %.0f%%\n", (regressionTolerance-1)*100)
	return true
}

// scalability is the Figure 5 shape: per query, bare execution plus
// no-batching and batching pricing at every worker count.
func scalability(r *runner, group string, db *storage.Database, supportN int, seed int64, workers []int, wqs []workload.Query) {
	set, err := support.GenerateNeighborhood(db, support.DefaultConfig(supportN, seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, wq := range wqs {
		q := exec.MustCompile(wq.SQL, db.Schema)
		r.measure(group, wq.Name+"/exec", 1, func() error {
			_, err := q.Run(db)
			return err
		})
		for _, w := range workers {
			e := pricing.NewEngine(db, set, 100)
			e.Opts.Batching = false
			e.Opts.Workers = w
			r.measure(group, wq.Name+"/no-batching", w, func() error {
				_, err := e.Price(pricing.WeightedCoverage, q)
				return err
			})
		}
		for _, w := range workers {
			e := pricing.NewEngine(db, set, 100)
			e.Opts.Workers = w
			r.measure(group, wq.Name+"/batching", w, func() error {
				_, err := e.Price(pricing.WeightedCoverage, q)
				return err
			})
		}
	}
}

// deltaTiers isolates the query shapes whose residual database checks the
// incremental-view tiers rescue from full re-execution: MIN/MAX aggregates
// (candidate views), DISTINCT with and without a join (multiplicity views),
// and a self-join (higher-order delta expansion). Each query prices with
// the tiered engine and with the legacy untiered engine — where DISTINCT
// and self-joins fall back to naive per-element re-execution and extremum
// removals re-run the full query — and the group prints the tiered-vs-
// untiered geometric-mean speedup at workers=1.
func deltaTiers(r *runner, seed int64, supportN int, workers []int) {
	db := datagen.World(seed)
	set, err := support.GenerateNeighborhood(db, support.DefaultConfig(supportN, seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	queries := []struct{ name, sql string }{
		{"minmax-group", "SELECT Continent, max(Population), min(Population) FROM Country GROUP BY Continent"},
		{"minmax-global", "SELECT min(Population), max(Population) FROM Country"},
		{"distinct", "SELECT DISTINCT Continent FROM Country"},
		{"distinct-join", "SELECT DISTINCT C.Continent FROM Country C, CountryLanguage CL WHERE C.Code = CL.CountryCode AND CL.Percentage > 10"},
		{"self-join", "SELECT a.Name FROM Country a, Country b WHERE a.Continent = b.Continent AND b.Population > 100000000"},
	}
	for _, wq := range queries {
		q := exec.MustCompile(wq.sql, db.Schema)
		for _, w := range workers {
			tiered := pricing.NewEngine(db, set, 100)
			tiered.Opts.Workers = w
			r.measure("delta-tiers", wq.name+"/tiered", w, func() error {
				_, err := tiered.Price(pricing.WeightedCoverage, q)
				return err
			})
		}
		for _, w := range workers {
			untiered := pricing.NewEngine(db, set, 100)
			untiered.Opts.Workers = w
			untiered.Opts.DisableDeltaTiers = true
			r.measure("delta-tiers", wq.name+"/untiered", w, func() error {
				_, err := untiered.Price(pricing.WeightedCoverage, q)
				return err
			})
		}
	}
	// Tiered-vs-untiered speedup at workers=1 (the acceptance figure).
	ns := map[string]float64{}
	for _, res := range r.out {
		if res.Group == "delta-tiers" && res.Workers == workers[0] {
			ns[res.Name] = res.NsPerOp
		}
	}
	logSum, n := 0.0, 0
	for _, wq := range queries {
		t, u := ns[wq.name+"/tiered"], ns[wq.name+"/untiered"]
		if t > 0 && u > 0 {
			fmt.Printf("delta-tiers: %-14s %6.2fx faster tiered (%.0f ns vs %.0f ns)\n", wq.name, u/t, t, u)
			logSum += math.Log(u / t)
			n++
		}
	}
	if n > 0 {
		fmt.Printf("delta-tiers: geomean %.2fx faster than untiered at workers=%d\n", math.Exp(logSum/float64(n)), workers[0])
	}
}

// quoteThroughput is the broker-frontend throughput group: quote latency
// through the public Broker under four traffic mixes (repeated queries
// against a disabled cache, repeated against a primed cache, all-unique,
// and a 90/10 repeated/unique mix), each with 1 client and NumCPU
// concurrent clients. One op = clients × quotesPerClient quotes, so
// ns/op is comparable across mixes at a fixed client count.
func quoteThroughput(r *runner, seed int64, supportN int) {
	db := datagen.World(seed)
	ctx := context.Background()
	repeated := []string{
		"SELECT Name FROM Country WHERE Continent = 'Asia'",
		"SELECT Population FROM Country WHERE ID < 50",
		"SELECT * FROM CountryLanguage WHERE IsOfficial = 'T'",
		"SELECT Name, Region FROM Country WHERE Continent = 'Europe'",
	}
	var uniqueN atomic.Int64
	unique := func() string {
		return fmt.Sprintf("SELECT Name FROM Country WHERE Population > %d", uniqueN.Add(1)*1000)
	}
	newBroker := func(cacheSize int) *qirana.Broker {
		b, err := qirana.NewBroker(db, 100, qirana.Options{
			SupportSetSize: supportN, Seed: seed,
			Workers: runtime.NumCPU(), QuoteCacheSize: cacheSize,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return b
	}
	const quotesPerClient = 4
	run := func(b *qirana.Broker, clients int, sqlFor func(g, i int) string) func() error {
		return func() error {
			errs := make(chan error, clients)
			var wg sync.WaitGroup
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < quotesPerClient; i++ {
						if _, err := b.Price(ctx, qirana.PriceRequest{SQLs: []string{sqlFor(g, i)}}); err != nil {
							select {
							case errs <- err:
							default:
							}
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			return <-errs
		}
	}
	repSQL := func(g, i int) string { return repeated[(g+i)%len(repeated)] }
	uniSQL := func(g, i int) string { return unique() }
	mixSQL := func(g, i int) string {
		if (g*quotesPerClient+i)%10 == 9 {
			return unique()
		}
		return repSQL(g, i)
	}
	clients := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		clients = append(clients, n)
	}
	for _, c := range clients {
		cold := newBroker(-1)
		r.measure("quote", fmt.Sprintf("repeated-cold/clients=%d", c), c, run(cold, c, repSQL))
		warm := newBroker(0)
		for _, sql := range repeated { // prime
			if _, err := warm.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		r.measure("quote", fmt.Sprintf("repeated-warm/clients=%d", c), c, run(warm, c, repSQL))
		uni := newBroker(0)
		r.measure("quote", fmt.Sprintf("unique-cold/clients=%d", c), c, run(uni, c, uniSQL))
		mix := newBroker(0)
		r.measure("quote", fmt.Sprintf("mix-90-10/clients=%d", c), c, run(mix, c, mixSQL))
	}
	var coldNs, warmNs float64
	for _, res := range r.out {
		if res.Group != "quote" {
			continue
		}
		switch res.Name {
		case "repeated-cold/clients=1":
			coldNs = res.NsPerOp
		case "repeated-warm/clients=1":
			warmNs = res.NsPerOp
		}
	}
	if coldNs > 0 && warmNs > 0 {
		fmt.Printf("quote: warm repeated path %.0fx faster than cold (%.0f ns vs %.0f ns per %d quotes)\n",
			coldNs/warmNs, warmNs, coldNs, quotesPerClient)
	}
}

// templatesGroup measures the prepared-template serving paths at
// workers=1 (one op = quotesPerOp quotes, comparable across variants):
//
//	cold-prepare        Broker.Prepare per call: parse + canonicalize +
//	                    template extraction, the one-time template cost
//	warm-parameterized  Stmt.Price over parameter vectors whose entries
//	                    are warm: render the param signature, assemble
//	                    the precomputed key, serve the shared entry
//	quote-hit           ad-hoc Quote of one fixed constant, warm: the
//	                    classic quote-cache hit (parse + canon + hit)
//	adhoc-cold          ad-hoc Quote with a fresh constant per call: the
//	                    pre-template worst case — every distinct constant
//	                    re-parses, re-canonicalizes and re-sweeps
//
// The printed summary reports warm-parameterized against quote-hit
// (template serving must stay within 2× of a same-constant hit: it does
// strictly less string work) and against adhoc-cold (the payoff: the
// sweep is shared across constants, so ≥10× is expected even at small
// support sizes).
func templatesGroup(r *runner, seed int64, supportN int) {
	db := datagen.World(seed)
	ctx := context.Background()
	const tmplSQL = "SELECT Name FROM Country WHERE Population > $1"
	newBroker := func() *qirana.Broker {
		b, err := qirana.NewBroker(db, 100, qirana.Options{
			SupportSetSize: supportN, Seed: seed, Workers: 1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return b
	}
	const quotesPerOp = 4
	const paramSpace = 16 // distinct warm parameter vectors to cycle

	// cold-prepare: the full one-time cost, repeated.
	bp := newBroker()
	r.measure("templates", "cold-prepare", 1, func() error {
		for i := 0; i < quotesPerOp; i++ {
			if _, err := bp.Prepare(ctx, tmplSQL); err != nil {
				return err
			}
		}
		return nil
	})

	// warm-parameterized: one Stmt, parameter vectors primed once.
	bw := newBroker()
	stmt, err := bw.Prepare(ctx, tmplSQL)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := 0; i < paramSpace; i++ {
		if _, err := stmt.Price(ctx, qirana.NewInt(int64(i)*100000)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	var warmN atomic.Int64
	r.measure("templates", "warm-parameterized", 1, func() error {
		for i := 0; i < quotesPerOp; i++ {
			v := warmN.Add(1) % paramSpace
			if _, err := stmt.Price(ctx, qirana.NewInt(v*100000)); err != nil {
				return err
			}
		}
		return nil
	})

	// quote-hit: the same broker and template, one fixed constant ad hoc.
	hitSQL := "SELECT Name FROM Country WHERE Population > 0"
	if _, err := bw.Price(ctx, qirana.PriceRequest{SQLs: []string{hitSQL}}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	r.measure("templates", "quote-hit", 1, func() error {
		for i := 0; i < quotesPerOp; i++ {
			if _, err := bw.Price(ctx, qirana.PriceRequest{SQLs: []string{hitSQL}}); err != nil {
				return err
			}
		}
		return nil
	})

	// adhoc-cold: a fresh constant per quote; every call is a cold miss.
	bc := newBroker()
	var uniqueN atomic.Int64
	r.measure("templates", "adhoc-cold", 1, func() error {
		for i := 0; i < quotesPerOp; i++ {
			sql := fmt.Sprintf("SELECT Name FROM Country WHERE Population > %d", uniqueN.Add(1)*1000+7)
			if _, err := bc.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}}); err != nil {
				return err
			}
		}
		return nil
	})

	ns := map[string]float64{}
	for _, res := range r.out {
		if res.Group == "templates" {
			ns[res.Name] = res.NsPerOp
		}
	}
	if ns["warm-parameterized"] > 0 && ns["quote-hit"] > 0 {
		fmt.Printf("templates: warm parameterized quote %.2fx a same-constant cache hit (%.0f ns vs %.0f ns, want ≤2x)\n",
			ns["warm-parameterized"]/ns["quote-hit"], ns["warm-parameterized"], ns["quote-hit"])
	}
	if ns["adhoc-cold"] > 0 && ns["warm-parameterized"] > 0 {
		fmt.Printf("templates: warm parameterized quote %.0fx faster than cold ad-hoc (%.0f ns vs %.0f ns, want ≥10x)\n",
			ns["adhoc-cold"]/ns["warm-parameterized"], ns["warm-parameterized"], ns["adhoc-cold"])
	}
}

// parseWorkers parses "1,numcpu,4" into a sorted, deduplicated list.
func parseWorkers(s string) ([]int, error) {
	seen := map[int]bool{}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		var w int
		if strings.EqualFold(part, "numcpu") {
			w = runtime.NumCPU()
		} else {
			n, err := strconv.Atoi(part)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("bad worker count %q", part)
			}
			w = n
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	sort.Ints(out)
	return out, nil
}

// clusterGroup measures cold-quote throughput against an in-process
// shard cluster at 1, 2 and 3 shards: every quote is a fresh SQL, so
// each op is a full fan-out + sweep + merge. The "workers" column
// reports the shard count. After each size the per-shard rows-swept
// counters are printed — with N shards each worker sweeps |S|/N of
// every cold quote, which is the whole point.
func clusterGroup(r *runner, seed int64, supportN int) {
	db := datagen.World(seed)
	var uniqueN atomic.Int64
	unique := func() string {
		return fmt.Sprintf("SELECT Name FROM Country WHERE Population > %d", uniqueN.Add(1)*1000)
	}
	for _, n := range []int{1, 2, 3} {
		opt := qirana.Options{SupportSetSize: supportN, Seed: seed}
		routed, err := qirana.NewBroker(db, 100, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cl, err := shard.AttachLocal(routed, db, n, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		r.measure("cluster", fmt.Sprintf("cold-quote/shards=%d", n), n, func() error {
			_, err := routed.Price(context.Background(), qirana.PriceRequest{SQLs: []string{unique()}})
			return err
		})
		for i, b := range cl.Brokers {
			m := b.Metrics()
			fmt.Printf("         shard %d/%d: %d rows swept over %d sweep RPCs\n",
				i+1, n, m.Counters["shard_rows_swept"], m.Counters["shard_sweep_requests"])
		}
		cl.Close()
	}
}

// approxGroup measures the sampled approximate pricing sweep against the
// exact sweep at the engine level (no broker cache, no background
// refiner — each price is a cold sweep): one fixed query per pricing
// function, exact plus three sample fractions. Sweep cost is live-mask
// driven, so ns/op should fall roughly linearly with the fraction; the
// printed summary reports the speedup and the estimate's overshoot over
// the exact price at each fraction (the served estimate is a guaranteed
// upper bound — overshoot is never negative).
func approxGroup(r *runner, seed int64, supportN int) {
	db := datagen.World(seed)
	set, err := support.GenerateNeighborhood(db, support.DefaultConfig(supportN, seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx := context.Background()
	fracs := []float64{0.25, 0.1, 0.05}
	queries := []struct {
		name string
		fn   pricing.Func
		sql  string
	}{
		{"coverage", pricing.WeightedCoverage, "SELECT Name, Population FROM Country WHERE Population > 1000000"},
		{"shannon", pricing.ShannonEntropy, "SELECT Name, Population FROM Country WHERE Population > 1000000"},
	}
	type cell struct{ ns, price, point float64 }
	got := map[string]cell{}
	for _, wq := range queries {
		q := exec.MustCompile(wq.sql, db.Schema)
		e := pricing.NewEngine(db, set, 100)
		var exact float64
		r.measure("approx", wq.name+"/exact", 1, func() error {
			p, err := e.Price(wq.fn, q)
			exact = p
			return err
		})
		got[wq.name+"/exact"] = cell{ns: r.out[len(r.out)-1].NsPerOp, price: exact, point: exact}
		n := set.Size()
		for _, frac := range fracs {
			mask := support.SampleMask(n, frac, seed, 0)
			var est pricing.Estimate
			name := fmt.Sprintf("%s/frac=%g", wq.name, frac)
			r.measure("approx", name, 1, func() error {
				var err error
				est, err = e.ApproxPriceCtx(ctx, wq.fn, mask, q)
				return err
			})
			got[name] = cell{ns: r.out[len(r.out)-1].NsPerOp, price: est.Price, point: est.Point}
		}
	}
	for _, wq := range queries {
		ex := got[wq.name+"/exact"]
		for _, frac := range fracs {
			c := got[fmt.Sprintf("%s/frac=%g", wq.name, frac)]
			if ex.ns <= 0 || c.ns <= 0 || ex.price <= 0 {
				continue
			}
			fmt.Printf("approx: %-8s frac=%-5g %5.2fx faster than exact; point estimate off by %5.1f%%, guaranteed bound +%.0f%%\n",
				wq.name, frac, ex.ns/c.ns, 100*math.Abs(c.point-ex.price)/ex.price, 100*(c.price-ex.price)/ex.price)
		}
	}
}
