// Command qirouter fronts a shard cluster: it serves the same JSON
// pricing API as qiranad (/quote, /quote/batch, /ask, /prepare, /stats,
// /metrics, /healthz) but fans every cold support-set sweep out to N
// shard workers, each sweeping only its contiguous slice of the support
// set. Slices are reassembled in global element order and every price
// folds on the router through the unmodified single-node code, so a
// clustered price — and its Stats — is bit-identical to a single
// node's. The router owns all mutable state: the purchase ledger (with
// -data, durable exactly like qiranad), buyer histories and weights;
// shards are read-only.
//
// Connecting to real workers (started with qiranad -shard):
//
//	qiranad -shard -addr :8081 -dataset world -seed 1 -support 999 &
//	qiranad -shard -addr :8082 -dataset world -seed 1 -support 999 &
//	qirouter -shards http://localhost:8081,http://localhost:8082 \
//	         -dataset world -seed 1 -support 999
//
// Every node must price the SAME support set: same -dataset, -seed and
// -support (generation is deterministic), or the same -load file. The
// handshake verifies the set's generation, checksum and size and
// refuses to start on any mismatch; a mid-flight mismatch (a restarted,
// resampled shard) turns into 409s, never a silently wrong price.
//
// Demo mode: -cluster N spins N in-process shard workers over the
// router's own support set — `make cluster` uses it, optionally with an
// in-process read-only standby mirror (-standby-addr) tailing the
// router's -data directory.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"qirana"
	"qirana/internal/httpapi"
	"qirana/internal/shard"
)

// config collects the router's flags (run used to take them as 15
// positional parameters, which had become unreadable and error-prone).
type config struct {
	addr, shards     string
	cluster          int
	dataset          string
	price            float64
	size             int
	scale            float64
	seed             int64
	workers          int
	load, dataDir    string
	timeout, drain   time.Duration
	shedP99          time.Duration
	standbyAddr      string
	shardRetries     int
	breakerThreshold int
	breakerCooldown  time.Duration
	hedgeAfter       time.Duration
	noHedge          bool
	noDegraded       bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "localhost:8090", "listen address")
	flag.StringVar(&cfg.shards, "shards", "", "comma-separated shard base URLs (e.g. http://host:8081,http://host:8082)")
	flag.IntVar(&cfg.cluster, "cluster", 0, "demo mode: spin N in-process shard workers instead of -shards")
	flag.StringVar(&cfg.dataset, "dataset", "world", "dataset: world, carcrash, dblp, tpch, ssb")
	flag.Float64Var(&cfg.price, "price", 100, "price of the full dataset")
	flag.IntVar(&cfg.size, "support", 1000, "support set size")
	flag.Float64Var(&cfg.scale, "scale", 0, "dataset scale (0 = small default)")
	flag.Int64Var(&cfg.seed, "seed", 1, "generator seed")
	flag.IntVar(&cfg.workers, "workers", 0, "parallel pricing workers per shard (demo mode)")
	flag.StringVar(&cfg.load, "load", "", "load a saved support set instead of sampling")
	flag.StringVar(&cfg.dataDir, "data", "", "durable state directory for the router's purchase ledger")
	flag.DurationVar(&cfg.timeout, "timeout", 30*time.Second, "per-request pricing timeout (0 = none)")
	flag.DurationVar(&cfg.drain, "drain", 10*time.Second, "graceful-shutdown drain window")
	flag.DurationVar(&cfg.shedP99, "shed-p99", 0, "load-shed target: when the windowed p99 pricing latency exceeds this, force a minimum max_error onto quotes (0 = never shed)")
	flag.StringVar(&cfg.standbyAddr, "standby-addr", "", "demo mode: also serve an in-process read-only standby mirror of -data on this address")
	def := shard.DefaultFaultPolicy()
	flag.IntVar(&cfg.shardRetries, "shard-retries", def.MaxAttempts, "per-shard request attempts per sweep, including the first (retries use jittered exponential backoff)")
	flag.IntVar(&cfg.breakerThreshold, "breaker-threshold", def.BreakerThreshold, "consecutive shard faults that trip a shard's circuit breaker open")
	flag.DurationVar(&cfg.breakerCooldown, "breaker-cooldown", def.BreakerCooldown, "how long an open breaker fails fast before probing the shard's health")
	flag.DurationVar(&cfg.hedgeAfter, "hedge-after", 0, "fixed hedge delay: fire a duplicate shard RPC after this long without an answer (0 = adapt to the fleet's latency signal)")
	flag.BoolVar(&cfg.noHedge, "no-hedge", false, "disable hedged shard requests")
	flag.BoolVar(&cfg.noDegraded, "no-degraded", false, "disable degraded-mode quotes: fail 503 instead of serving a sound over-quote while part of the cluster is unreachable")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// faultPolicy translates the fault-tolerance flags onto the fan-out's
// policy, starting from the defaults.
func (c config) faultPolicy() shard.FaultPolicy {
	p := shard.DefaultFaultPolicy()
	p.MaxAttempts = c.shardRetries
	p.BreakerThreshold = c.breakerThreshold
	p.BreakerCooldown = c.breakerCooldown
	p.HedgeAfter = c.hedgeAfter
	p.DisableHedging = c.noHedge
	return p
}

func run(cfg config) error {
	if (cfg.shards == "") == (cfg.cluster == 0) {
		return errors.New("set exactly one of -shards (connect to workers) or -cluster N (in-process demo)")
	}
	db, err := qirana.LoadDataset(cfg.dataset, cfg.seed, cfg.scale)
	if err != nil {
		return err
	}
	opts := qirana.Options{SupportSetSize: cfg.size, Seed: cfg.seed, Workers: cfg.workers,
		ShedTargetP99: cfg.shedP99, DisableDegradedQuotes: cfg.noDegraded}
	var broker *qirana.Broker
	switch {
	case cfg.dataDir != "" && cfg.load != "":
		return errors.New("-data and -load are mutually exclusive: a durable router persists its own support set in the data directory")
	case cfg.dataDir != "":
		broker, err = qirana.OpenBroker(cfg.dataDir, db, cfg.price, opts)
	case cfg.load != "":
		f, ferr := os.Open(cfg.load)
		if ferr != nil {
			return ferr
		}
		lopts := opts
		lopts.SupportSetSize = 0
		broker, err = qirana.NewBrokerFromSupport(db, cfg.price, f, lopts)
		f.Close()
	default:
		broker, err = qirana.NewBroker(db, cfg.price, opts)
	}
	if err != nil {
		return err
	}

	var nShards int
	if cfg.cluster > 0 {
		cl, err := shard.AttachLocal(broker, db, cfg.cluster, opts)
		if err != nil {
			return err
		}
		defer cl.Close()
		cl.Fanout.SetPolicy(cfg.faultPolicy())
		nShards = cfg.cluster
		fmt.Printf("qirouter: %d in-process shards over %s (support %d: ~%d elements each)\n",
			cfg.cluster, cfg.dataset, broker.SupportSetSize(), (broker.SupportSetSize()+cfg.cluster-1)/cfg.cluster)
	} else {
		urls := strings.Split(cfg.shards, ",")
		f, err := shard.Connect(context.Background(), urls, nil)
		if err != nil {
			return fmt.Errorf("shard handshake: %w", err)
		}
		info := f.Info()
		if info.SupportGen != broker.SupportGen() || info.SupportSum != broker.SupportChecksum() || info.Size != broker.SupportSetSize() {
			return fmt.Errorf("shards price gen=%d sum=%016x size=%d but the router holds gen=%d sum=%016x size=%d — start every node with the same -dataset/-seed/-support (or the same -load file)",
				info.SupportGen, info.SupportSum, info.Size,
				broker.SupportGen(), broker.SupportChecksum(), broker.SupportSetSize())
		}
		f.SetPolicy(cfg.faultPolicy())
		broker.SetRemoteSweeper(f)
		nShards = len(urls)
		fmt.Printf("qirouter: %d shards verified (support %d, checksum %016x)\n",
			nShards, info.Size, info.SupportSum)
	}
	pol := cfg.faultPolicy()
	fmt.Printf("qirouter: fault policy: %d attempts/shard, breaker %d faults → %s cooldown, hedging %s, degraded quotes %s\n",
		pol.MaxAttempts, pol.BreakerThreshold, pol.BreakerCooldown,
		onOff(!pol.DisableHedging), onOff(!cfg.noDegraded))
	fmt.Printf("qirouter: %s (%d tuples), support %d, price %g, routing on http://%s\n",
		cfg.dataset, db.TotalRows(), broker.SupportSetSize(), cfg.price, cfg.addr)
	if info := broker.Durability(); info.Enabled {
		fmt.Printf("qirouter: durable ledger in %s (snapshot seq %d, replayed %d records)\n",
			info.Dir, info.SnapshotSeq, info.ReplayedRecords)
	}

	stopMirror := func() {}
	if cfg.standbyAddr != "" {
		if cfg.dataDir == "" {
			return errors.New("-standby-addr requires -data (the standby mirrors the router's state directory)")
		}
		stopMirror, err = startMirror(cfg.standbyAddr, cfg.dataDir, db, opts, cfg.timeout)
		if err != nil {
			return err
		}
		fmt.Printf("qirouter: standby mirror tailing %s on http://%s\n", cfg.dataDir, cfg.standbyAddr)
	}

	srv := &http.Server{Addr: cfg.addr, Handler: httpapi.New(broker, cfg.timeout)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("qirouter: draining")
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-errc
	stopMirror()
	if err := broker.Close(); err != nil {
		return fmt.Errorf("close broker: %w", err)
	}
	return nil
}

func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

// startMirror serves an in-process read-only standby over the router's
// state directory: it tails the snapshot + ledger once a second, so
// /stats and quotes on the mirror track the leader with at most a tick
// of lag. (A real out-of-process standby with automatic promotion is
// qiranad -standby.)
func startMirror(addr, dataDir string, db *qirana.Database, opts qirana.Options, timeout time.Duration) (stop func(), err error) {
	follower, err := qirana.OpenFollower(dataDir, db, opts)
	if err != nil {
		return nil, err
	}
	var current atomic.Pointer[qirana.Broker]
	current.Store(follower.Broker())
	srv := &http.Server{Addr: addr, Handler: httpapi.NewDynamic(func() *qirana.Broker { return current.Load() }, timeout)}
	done := make(chan struct{})
	go srv.ListenAndServe()
	go func() {
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if err := follower.Refresh(); err == nil {
					current.Store(follower.Broker())
				}
			}
		}
	}()
	return func() { close(done); srv.Close() }, nil
}
