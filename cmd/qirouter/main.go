// Command qirouter fronts a shard cluster: it serves the same JSON
// pricing API as qiranad (/quote, /quote/batch, /ask, /prepare, /stats,
// /metrics, /healthz) but fans every cold support-set sweep out to N
// shard workers, each sweeping only its contiguous slice of the support
// set. Slices are reassembled in global element order and every price
// folds on the router through the unmodified single-node code, so a
// clustered price — and its Stats — is bit-identical to a single
// node's. The router owns all mutable state: the purchase ledger (with
// -data, durable exactly like qiranad), buyer histories and weights;
// shards are read-only.
//
// Connecting to real workers (started with qiranad -shard):
//
//	qiranad -shard -addr :8081 -dataset world -seed 1 -support 999 &
//	qiranad -shard -addr :8082 -dataset world -seed 1 -support 999 &
//	qirouter -shards http://localhost:8081,http://localhost:8082 \
//	         -dataset world -seed 1 -support 999
//
// Every node must price the SAME support set: same -dataset, -seed and
// -support (generation is deterministic), or the same -load file. The
// handshake verifies the set's generation, checksum and size and
// refuses to start on any mismatch; a mid-flight mismatch (a restarted,
// resampled shard) turns into 409s, never a silently wrong price.
//
// Demo mode: -cluster N spins N in-process shard workers over the
// router's own support set — `make cluster` uses it, optionally with an
// in-process read-only standby mirror (-standby-addr) tailing the
// router's -data directory.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"qirana"
	"qirana/internal/httpapi"
	"qirana/internal/shard"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:8090", "listen address")
		shards   = flag.String("shards", "", "comma-separated shard base URLs (e.g. http://host:8081,http://host:8082)")
		cluster  = flag.Int("cluster", 0, "demo mode: spin N in-process shard workers instead of -shards")
		dataset  = flag.String("dataset", "world", "dataset: world, carcrash, dblp, tpch, ssb")
		price    = flag.Float64("price", 100, "price of the full dataset")
		size     = flag.Int("support", 1000, "support set size")
		scale    = flag.Float64("scale", 0, "dataset scale (0 = small default)")
		seed     = flag.Int64("seed", 1, "generator seed")
		workers  = flag.Int("workers", 0, "parallel pricing workers per shard (demo mode)")
		load     = flag.String("load", "", "load a saved support set instead of sampling")
		dataDir  = flag.String("data", "", "durable state directory for the router's purchase ledger")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request pricing timeout (0 = none)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		shedP99  = flag.Duration("shed-p99", 0, "load-shed target: when the windowed p99 pricing latency exceeds this, force a minimum max_error onto quotes (0 = never shed)")
		standbyA = flag.String("standby-addr", "", "demo mode: also serve an in-process read-only standby mirror of -data on this address")
	)
	flag.Parse()
	if err := run(*addr, *shards, *cluster, *dataset, *price, *size, *scale, *seed, *workers, *load, *dataDir, *timeout, *drain, *shedP99, *standbyA); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(addr, shards string, cluster int, dataset string, price float64, size int, scale float64, seed int64, workers int, load, dataDir string, timeout, drain, shedP99 time.Duration, standbyAddr string) error {
	if (shards == "") == (cluster == 0) {
		return errors.New("set exactly one of -shards (connect to workers) or -cluster N (in-process demo)")
	}
	db, err := qirana.LoadDataset(dataset, seed, scale)
	if err != nil {
		return err
	}
	opts := qirana.Options{SupportSetSize: size, Seed: seed, Workers: workers, ShedTargetP99: shedP99}
	var broker *qirana.Broker
	switch {
	case dataDir != "" && load != "":
		return errors.New("-data and -load are mutually exclusive: a durable router persists its own support set in the data directory")
	case dataDir != "":
		broker, err = qirana.OpenBroker(dataDir, db, price, opts)
	case load != "":
		f, ferr := os.Open(load)
		if ferr != nil {
			return ferr
		}
		broker, err = qirana.NewBrokerFromSupport(db, price, f, qirana.Options{Workers: workers})
		f.Close()
	default:
		broker, err = qirana.NewBroker(db, price, opts)
	}
	if err != nil {
		return err
	}

	var nShards int
	if cluster > 0 {
		cl, err := shard.AttachLocal(broker, db, cluster, opts)
		if err != nil {
			return err
		}
		defer cl.Close()
		nShards = cluster
		fmt.Printf("qirouter: %d in-process shards over %s (support %d: ~%d elements each)\n",
			cluster, dataset, broker.SupportSetSize(), (broker.SupportSetSize()+cluster-1)/cluster)
	} else {
		urls := strings.Split(shards, ",")
		f, err := shard.Connect(context.Background(), urls, nil)
		if err != nil {
			return fmt.Errorf("shard handshake: %w", err)
		}
		info := f.Info()
		if info.SupportGen != broker.SupportGen() || info.SupportSum != broker.SupportChecksum() || info.Size != broker.SupportSetSize() {
			return fmt.Errorf("shards price gen=%d sum=%016x size=%d but the router holds gen=%d sum=%016x size=%d — start every node with the same -dataset/-seed/-support (or the same -load file)",
				info.SupportGen, info.SupportSum, info.Size,
				broker.SupportGen(), broker.SupportChecksum(), broker.SupportSetSize())
		}
		broker.SetRemoteSweeper(f)
		nShards = len(urls)
		fmt.Printf("qirouter: %d shards verified (support %d, checksum %016x)\n",
			nShards, info.Size, info.SupportSum)
	}
	fmt.Printf("qirouter: %s (%d tuples), support %d, price %g, routing on http://%s\n",
		dataset, db.TotalRows(), broker.SupportSetSize(), price, addr)
	if info := broker.Durability(); info.Enabled {
		fmt.Printf("qirouter: durable ledger in %s (snapshot seq %d, replayed %d records)\n",
			info.Dir, info.SnapshotSeq, info.ReplayedRecords)
	}

	stopMirror := func() {}
	if standbyAddr != "" {
		if dataDir == "" {
			return errors.New("-standby-addr requires -data (the standby mirrors the router's state directory)")
		}
		stopMirror, err = startMirror(standbyAddr, dataDir, db, opts, timeout)
		if err != nil {
			return err
		}
		fmt.Printf("qirouter: standby mirror tailing %s on http://%s\n", dataDir, standbyAddr)
	}

	srv := &http.Server{Addr: addr, Handler: httpapi.New(broker, timeout)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("qirouter: draining")
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-errc
	stopMirror()
	if err := broker.Close(); err != nil {
		return fmt.Errorf("close broker: %w", err)
	}
	return nil
}

// startMirror serves an in-process read-only standby over the router's
// state directory: it tails the snapshot + ledger once a second, so
// /stats and quotes on the mirror track the leader with at most a tick
// of lag. (A real out-of-process standby with automatic promotion is
// qiranad -standby.)
func startMirror(addr, dataDir string, db *qirana.Database, opts qirana.Options, timeout time.Duration) (stop func(), err error) {
	follower, err := qirana.OpenFollower(dataDir, db, opts)
	if err != nil {
		return nil, err
	}
	var current atomic.Pointer[qirana.Broker]
	current.Store(follower.Broker())
	srv := &http.Server{Addr: addr, Handler: httpapi.NewDynamic(func() *qirana.Broker { return current.Load() }, timeout)}
	done := make(chan struct{})
	go srv.ListenAndServe()
	go func() {
		ticker := time.NewTicker(time.Second)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				if err := follower.Refresh(); err == nil {
					current.Store(follower.Broker())
				}
			}
		}
	}()
	return func() { close(done); srv.Close() }, nil
}
