// Command qiranad serves a query-pricing broker over HTTP: the daemon
// form of the interactive qirana shell. It loads one of the benchmark
// datasets, prices it, and answers JSON requests:
//
//	POST /quote        {"sql": "SELECT ..."}                  up-front price
//	POST /quote/batch  {"sqls": ["...", "..."]}               k prices, one sweep
//	POST /ask          {"buyer": "alice", "sql": "..."}       buy: answer + charge
//	GET  /stats        broker counters (pricing stats, quote cache, shed state)
//	GET  /metrics      request counters + latency percentiles (p50/p95/p99)
//	GET  /healthz      liveness + support-set identity
//	GET  /debug/vars   expvar, including the live metrics registry
//	GET  /debug/pprof  runtime profiling
//
// Every route also answers under the versioned /v1/ prefix — the
// canonical path for new clients. Quotes accept "max_error" (body field
// or ?max_error= query parameter) to engage the sampled approximate
// pricing path: the served price is a guaranteed upper bound on the
// exact price, refined to exact in the background; with -shed-p99 the
// daemon forces a minimum max_error onto quotes whenever the windowed
// p99 pricing latency exceeds the target.
//
// Every pricing request runs under a context derived from the HTTP
// request: a dropped connection or the -timeout deadline (per-request
// override: ?timeout_ms=) cancels the support-set sweep mid-batch, and
// the broker guarantees a cancelled request charges no buyer and caches
// nothing. On SIGINT/SIGTERM the daemon stops accepting connections and
// drains in-flight requests for up to -drain before exiting.
//
// With -data the broker is durable: every purchase is write-ahead-logged
// and fsynced before the buyer is charged, and restarting with the same
// -data directory recovers identical prices and balances — even after
// SIGKILL. Clean shutdown checkpoints the ledger into a snapshot so the
// next start replays nothing.
//
// Cluster modes (see qirouter for the fan-out front):
//
//	-shard      serve as a read-only shard worker: mounts POST
//	            /shard/sweep and GET /shard/info next to the quoting
//	            endpoints; purchases are refused (503) — they belong on
//	            the router, which owns the ledger.
//	-standby -data DIR
//	            hot standby: tail the leader's state directory (snapshot
//	            + write-ahead ledger) into a read-only twin, probe the
//	            leader's /healthz (-leader), and after -failover-after
//	            consecutive probe failures promote — re-open the
//	            directory through crash recovery and serve writable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"qirana"
	"qirana/internal/httpapi"
	"qirana/internal/shard"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address")
		dataset = flag.String("dataset", "world", "dataset: world, carcrash, dblp, tpch, ssb")
		price   = flag.Float64("price", 100, "price of the full dataset")
		size    = flag.Int("support", 1000, "support set size")
		scale   = flag.Float64("scale", 0, "dataset scale (0 = small default)")
		seed    = flag.Int64("seed", 1, "generator seed")
		workers = flag.Int("workers", 0, "parallel pricing workers (0 or 1 = serial, capped at GOMAXPROCS)")
		load    = flag.String("load", "", "load a support set saved by the qirana shell instead of sampling")
		dataDir = flag.String("data", "", "durable state directory (write-ahead ledger + snapshots); reuse it across restarts to keep buyer balances")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request pricing timeout (0 = none)")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
		shedP99 = flag.Duration("shed-p99", 0, "load-shed target: when the windowed p99 pricing latency exceeds this, force a minimum max_error onto quotes (0 = never shed)")

		shardMode = flag.Bool("shard", false, "serve as a read-only shard worker (/shard/sweep, /shard/info)")
		standby   = flag.Bool("standby", false, "serve as a hot standby tailing -data; requires -leader")
		leaderURL = flag.String("leader", "", "leader base URL the standby probes (e.g. http://localhost:8080)")
		probeIv   = flag.Duration("probe-interval", time.Second, "standby: nominal leader probe and WAL tail interval (jittered ±20%, backs off while probes miss)")
		probeTo   = flag.Duration("probe-timeout", 0, "standby: per-probe HTTP timeout (0 = 2× -probe-interval); keep it above the leader's worst-case pause so a slow leader is not mistaken for a dead one")
		failAfter = flag.Int("failover-after", 3, "standby: CONSECUTIVE failed probes before promoting (any success resets the streak)")
	)
	flag.Parse()
	cfg := config{
		addr: *addr, dataset: *dataset, price: *price, size: *size, scale: *scale,
		seed: *seed, workers: *workers, load: *load, dataDir: *dataDir,
		timeout: *timeout, drain: *drain, shedP99: *shedP99,
		shard: *shardMode, standby: *standby, leaderURL: *leaderURL,
		probeInterval: *probeIv, probeTimeout: *probeTo, failoverAfter: *failAfter,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

type config struct {
	addr, dataset  string
	price          float64
	size           int
	scale          float64
	seed           int64
	workers        int
	load, dataDir  string
	timeout, drain time.Duration
	shedP99        time.Duration
	shard, standby bool
	leaderURL      string
	probeInterval  time.Duration
	probeTimeout   time.Duration
	failoverAfter  int
}

func run(cfg config) error {
	db, err := qirana.LoadDataset(cfg.dataset, cfg.seed, cfg.scale)
	if err != nil {
		return err
	}
	if cfg.standby {
		return runStandby(cfg, db)
	}
	var broker *qirana.Broker
	opts := qirana.Options{SupportSetSize: cfg.size, Seed: cfg.seed, Workers: cfg.workers, ShedTargetP99: cfg.shedP99}
	switch {
	case cfg.dataDir != "" && cfg.load != "":
		return errors.New("-data and -load are mutually exclusive: a durable broker persists its own support set in the data directory")
	case cfg.shard && cfg.dataDir != "":
		return errors.New("-shard excludes -data: shard workers are read-only; the router owns the purchase ledger")
	case cfg.dataDir != "":
		broker, err = qirana.OpenBroker(cfg.dataDir, db, cfg.price, opts)
	case cfg.load != "":
		f, ferr := os.Open(cfg.load)
		if ferr != nil {
			return ferr
		}
		broker, err = qirana.NewBrokerFromSupport(db, cfg.price, f, qirana.Options{Workers: cfg.workers, ShedTargetP99: cfg.shedP99})
		f.Close()
	default:
		broker, err = qirana.NewBroker(db, cfg.price, opts)
	}
	if err != nil {
		return err
	}
	role := "serving"
	if cfg.shard {
		broker.SetReadOnly(true)
		role = "shard worker"
	}
	fmt.Printf("qiranad: %s (%d tuples), support %d, price %g, %s on http://%s\n",
		cfg.dataset, db.TotalRows(), broker.SupportSetSize(), cfg.price, role, cfg.addr)
	if info := broker.Durability(); info.Enabled {
		note := ""
		if info.TruncatedTail {
			note = fmt.Sprintf(", dropped a torn %d-byte ledger tail", info.TruncatedBytes)
		}
		fmt.Printf("qiranad: durable state in %s (snapshot seq %d, replayed %d ledger records%s)\n",
			info.Dir, info.SnapshotSeq, info.ReplayedRecords, note)
	}

	api := httpapi.New(broker, cfg.timeout)
	if cfg.shard {
		shard.Register(api.Mux(), broker)
	}
	return serve(cfg, api, func() error { return broker.Close() })
}

// runStandby tails the leader's state directory into a read-only twin
// and promotes after failoverAfter consecutive failed /healthz probes.
// The serving broker is swapped atomically: requests before promotion
// see the read-only twin (quotes work, purchases 503), requests after
// see the recovered writable leader.
func runStandby(cfg config, db *qirana.Database) error {
	if cfg.dataDir == "" || cfg.leaderURL == "" {
		return errors.New("-standby requires -data (the leader's state directory) and -leader (its base URL)")
	}
	opts := qirana.Options{SupportSetSize: cfg.size, Seed: cfg.seed, Workers: cfg.workers}
	follower, err := qirana.OpenFollower(cfg.dataDir, db, opts)
	if err != nil {
		return err
	}
	var current atomic.Pointer[qirana.Broker]
	current.Store(follower.Broker())
	api := httpapi.NewDynamic(func() *qirana.Broker { return current.Load() }, cfg.timeout)

	fmt.Printf("qiranad: standby tailing %s, probing %s every ~%s (failover after %d consecutive misses), serving on http://%s\n",
		cfg.dataDir, cfg.leaderURL, cfg.probeInterval, cfg.failoverAfter, cfg.addr)

	// The probe timeout is decoupled from the interval: a leader paused
	// for one beat must fail a PROBE, not be declared dead by a client
	// timeout that races the next tick.
	probeTimeout := cfg.probeTimeout
	if probeTimeout <= 0 {
		probeTimeout = 2 * cfg.probeInterval
	}
	client := &http.Client{Timeout: probeTimeout}
	gate := newFailoverGate(cfg.failoverAfter, cfg.probeInterval, time.Now().UnixNano())
	stopTail := make(chan struct{})
	go probeLoop(stopTail, gate,
		func() {
			if err := follower.Refresh(); err != nil {
				fmt.Fprintf(os.Stderr, "qiranad: standby refresh: %v\n", err)
			} else {
				current.Store(follower.Broker())
			}
		},
		func() error {
			resp, err := client.Get(cfg.leaderURL + "/healthz")
			if err != nil {
				fmt.Fprintf(os.Stderr, "qiranad: leader probe failed (%d/%d): %v\n", gate.misses+1, cfg.failoverAfter, err)
				return err
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err := fmt.Errorf("leader /healthz answered %d", resp.StatusCode)
				fmt.Fprintf(os.Stderr, "qiranad: leader probe failed (%d/%d): %v\n", gate.misses+1, cfg.failoverAfter, err)
				return err
			}
			return nil
		},
		func() {
			b, perr := follower.Promote()
			if perr != nil {
				fmt.Fprintf(os.Stderr, "qiranad: promote failed: %v\n", perr)
				return
			}
			current.Store(b)
			fmt.Println("qiranad: promoted to leader; purchases enabled")
		})
	return serve(cfg, api, func() error {
		close(stopTail)
		// Only a promoted standby owns durable state worth closing.
		if follower.Promoted() {
			return current.Load().Close()
		}
		return nil
	})
}

// serve runs the HTTP server with the shared graceful-drain protocol,
// then invokes shutdown (broker close / tail stop).
func serve(cfg config, handler http.Handler, shutdown func() error) error {
	srv := &http.Server{Addr: cfg.addr, Handler: handler}

	// Graceful drain: on SIGINT/SIGTERM stop accepting, let in-flight
	// pricing requests finish (bounded by the drain window — their own
	// request contexts keep ticking), then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("qiranad: draining")
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-errc // ListenAndServe's http.ErrServerClosed
	// Drained: checkpoint the ledger into a snapshot and release the data
	// directory, so the next start replays nothing.
	if err := shutdown(); err != nil {
		return fmt.Errorf("close broker: %w", err)
	}
	return nil
}
