// Command qiranad serves a query-pricing broker over HTTP: the daemon
// form of the interactive qirana shell. It loads one of the benchmark
// datasets, prices it, and answers JSON requests:
//
//	POST /quote        {"sql": "SELECT ..."}                  up-front price
//	POST /quote/batch  {"sqls": ["...", "..."]}               k prices, one sweep
//	POST /ask          {"buyer": "alice", "sql": "..."}       buy: answer + charge
//	GET  /stats        broker counters (pricing stats, quote cache)
//	GET  /metrics      request counters + latency percentiles (p50/p95/p99)
//	GET  /debug/vars   expvar, including the live metrics registry
//	GET  /debug/pprof  runtime profiling
//
// Every pricing request runs under a context derived from the HTTP
// request: a dropped connection or the -timeout deadline (per-request
// override: ?timeout_ms=) cancels the support-set sweep mid-batch, and
// the broker guarantees a cancelled request charges no buyer and caches
// nothing. On SIGINT/SIGTERM the daemon stops accepting connections and
// drains in-flight requests for up to -drain before exiting.
//
// With -data the broker is durable: every purchase is write-ahead-logged
// and fsynced before the buyer is charged, and restarting with the same
// -data directory recovers identical prices and balances — even after
// SIGKILL. Clean shutdown checkpoints the ledger into a snapshot so the
// next start replays nothing.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"qirana"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:8080", "listen address")
		dataset = flag.String("dataset", "world", "dataset: world, carcrash, dblp, tpch, ssb")
		price   = flag.Float64("price", 100, "price of the full dataset")
		size    = flag.Int("support", 1000, "support set size")
		scale   = flag.Float64("scale", 0, "dataset scale (0 = small default)")
		seed    = flag.Int64("seed", 1, "generator seed")
		workers = flag.Int("workers", 0, "parallel pricing workers (0 or 1 = serial, capped at GOMAXPROCS)")
		load    = flag.String("load", "", "load a support set saved by the qirana shell instead of sampling")
		dataDir = flag.String("data", "", "durable state directory (write-ahead ledger + snapshots); reuse it across restarts to keep buyer balances")
		timeout = flag.Duration("timeout", 30*time.Second, "per-request pricing timeout (0 = none)")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	)
	flag.Parse()
	if err := run(*addr, *dataset, *price, *size, *scale, *seed, *workers, *load, *dataDir, *timeout, *drain); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

func run(addr, dataset string, price float64, size int, scale float64, seed int64, workers int, load, dataDir string, timeout, drain time.Duration) error {
	db, err := qirana.LoadDataset(dataset, seed, scale)
	if err != nil {
		return err
	}
	var broker *qirana.Broker
	switch {
	case dataDir != "" && load != "":
		return errors.New("-data and -load are mutually exclusive: a durable broker persists its own support set in the data directory")
	case dataDir != "":
		broker, err = qirana.OpenBroker(dataDir, db, price, qirana.Options{SupportSetSize: size, Seed: seed, Workers: workers})
	case load != "":
		f, ferr := os.Open(load)
		if ferr != nil {
			return ferr
		}
		broker, err = qirana.NewBrokerFromSupport(db, price, f, qirana.Options{Workers: workers})
		f.Close()
	default:
		broker, err = qirana.NewBroker(db, price, qirana.Options{SupportSetSize: size, Seed: seed, Workers: workers})
	}
	if err != nil {
		return err
	}
	fmt.Printf("qiranad: %s (%d tuples), support %d, price %g, serving on http://%s\n",
		dataset, db.TotalRows(), broker.SupportSetSize(), price, addr)
	if info := broker.Durability(); info.Enabled {
		note := ""
		if info.TruncatedTail {
			note = fmt.Sprintf(", dropped a torn %d-byte ledger tail", info.TruncatedBytes)
		}
		fmt.Printf("qiranad: durable state in %s (snapshot seq %d, replayed %d ledger records%s)\n",
			info.Dir, info.SnapshotSeq, info.ReplayedRecords, note)
	}

	srv := &http.Server{Addr: addr, Handler: newMux(broker, timeout)}

	// Graceful drain: on SIGINT/SIGTERM stop accepting, let in-flight
	// pricing requests finish (bounded by the drain window — their own
	// request contexts keep ticking), then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("qiranad: draining")
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	<-errc // ListenAndServe's http.ErrServerClosed
	// Drained: checkpoint the ledger into a snapshot and release the data
	// directory, so the next start replays nothing.
	if err := broker.Close(); err != nil {
		return fmt.Errorf("close broker: %w", err)
	}
	return nil
}
