package main

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestFailoverGateConsecutiveMisses: only K misses IN A ROW promote —
// any success resets the streak, so a flapping leader (answering every
// other probe) never loses its ledger to an eager standby.
func TestFailoverGateConsecutiveMisses(t *testing.T) {
	g := newFailoverGate(3, 10*time.Millisecond, 1)
	if g.miss() || g.miss() {
		t.Fatal("promoted before K consecutive misses")
	}
	g.success() // streak broken at 2/3
	if g.miss() || g.miss() {
		t.Fatal("success did not reset the miss streak")
	}
	if !g.miss() {
		t.Fatal("third consecutive miss must promote")
	}

	// A flapping leader: alternating miss/success forever never reaches
	// the gate no matter how many total misses pile up.
	g = newFailoverGate(2, 10*time.Millisecond, 1)
	for i := 0; i < 50; i++ {
		if g.miss() {
			t.Fatalf("flapping leader promoted on alternation %d", i)
		}
		g.success()
	}

	// k < 1 is clamped: a gate can never promote on zero misses.
	g = newFailoverGate(0, time.Millisecond, 1)
	if !g.miss() {
		t.Fatal("k clamped to 1: first miss must promote")
	}
}

// TestFailoverGateWaitBounds: the probe interval is jittered ±20% (a
// fleet must not probe in phase) and backs off — doubling per
// consecutive miss, capped at 4× base — so a slow-but-alive leader gets
// MORE time to answer as the streak grows, not less.
func TestFailoverGateWaitBounds(t *testing.T) {
	const base = 100 * time.Millisecond
	bounds := func(mult float64) (time.Duration, time.Duration) {
		lo := time.Duration(float64(base) * mult * 0.8)
		hi := time.Duration(float64(base) * mult * 1.2)
		return lo, hi
	}
	g := newFailoverGate(10, base, 42)
	for streak, mult := range map[int]float64{0: 1, 1: 2, 2: 4, 3: 4, 7: 4} {
		g.misses = streak
		lo, hi := bounds(mult)
		for i := 0; i < 200; i++ {
			if d := g.wait(); d < lo || d >= hi {
				t.Fatalf("streak %d: wait %v outside [%v, %v)", streak, d, lo, hi)
			}
		}
	}

	// Jitter actually varies: two gates with different seeds (or the
	// same gate across draws) must not produce one constant interval.
	g.misses = 0
	first := g.wait()
	varies := false
	for i := 0; i < 20; i++ {
		if g.wait() != first {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("wait() is not jittered")
	}
}

// TestProbeLoopFlappingLeaderNeverPromotes: a leader that misses K-1
// probes then answers, forever, keeps the standby read-only for the
// whole window; once the leader goes fully dark the loop promotes after
// exactly K consecutive misses and returns.
func TestProbeLoopFlappingLeaderNeverPromotes(t *testing.T) {
	gate := newFailoverGate(3, time.Millisecond, 7)
	var refreshes, probes atomic.Int64
	var dark atomic.Bool
	promoted := make(chan struct{})
	done := make(chan struct{})
	errDown := errors.New("leader down")

	go func() {
		defer close(done)
		probeLoop(nil, gate,
			func() { refreshes.Add(1) },
			func() error {
				n := probes.Add(1)
				if dark.Load() {
					return errDown
				}
				// Flap: two misses, one success — always one short of K.
				if n%3 != 0 {
					return errDown
				}
				return nil
			},
			func() { close(promoted) },
		)
	}()

	// ~60 probe periods of flapping: no promotion allowed.
	deadline := time.After(100 * time.Millisecond)
flap:
	for {
		select {
		case <-promoted:
			t.Fatal("flapping leader promoted the standby")
		case <-deadline:
			break flap
		default:
			time.Sleep(time.Millisecond)
		}
	}
	if probes.Load() < 10 {
		t.Fatalf("probe loop barely ran: %d probes in 100ms at 1ms base", probes.Load())
	}

	// Leader goes dark: promotion must arrive, and the loop must exit.
	before := probes.Load()
	dark.Store(true)
	select {
	case <-promoted:
	case <-time.After(2 * time.Second):
		t.Fatal("dead leader never promoted the standby")
	}
	<-done
	// At most a handful of probes separate dark from promotion: the
	// streak may carry over from the flap pattern, so between 1 and K
	// additional probes fire — never an unbounded number.
	if extra := probes.Load() - before; extra < 1 || extra > int64(gate.k) {
		t.Fatalf("promotion took %d probes after leader went dark, want 1..%d", extra, gate.k)
	}
	if refreshes.Load() != probes.Load() {
		t.Fatalf("refresh ran %d times for %d probes: the WAL tail must refresh every wakeup",
			refreshes.Load(), probes.Load())
	}
}

// TestProbeLoopStops: closing stop ends the loop without promoting.
func TestProbeLoopStops(t *testing.T) {
	// k is huge so the always-failing probe can't legitimately promote
	// while the stop signal races the probe timer.
	gate := newFailoverGate(1000, time.Millisecond, 3)
	stop := make(chan struct{})
	promoted := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		probeLoop(stop, gate, func() {}, func() error { return errors.New("down") },
			func() { close(promoted) })
	}()
	close(stop)
	select {
	case <-done:
	case <-promoted:
		t.Fatal("stopped loop promoted")
	case <-time.After(2 * time.Second):
		t.Fatal("probe loop did not stop")
	}
}
