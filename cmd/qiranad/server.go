package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"qirana"
)

// server wraps one broker behind the JSON HTTP API. Every pricing
// endpoint derives its context from the request (so a dropped client
// connection cancels the sweep mid-batch) with the configured per-request
// timeout layered on top; the broker's cancellation contract guarantees
// an aborted request charges nobody and poisons no cache entry.
type server struct {
	broker *qirana.Broker
	// timeout bounds each pricing request (0 = no bound beyond the
	// client's connection). Overridable per request with ?timeout_ms=.
	timeout time.Duration
}

// newMux routes the serving API:
//
//	POST /quote        price one query (or a bundle)
//	POST /quote/batch  price k independent queries in one shared sweep
//	POST /ask          buy a query for a buyer account
//	GET  /stats        broker counters (last pricing stats, quote cache)
//	GET  /metrics      obs snapshot: counters + latency percentiles
//	GET  /debug/vars   expvar (includes the live metrics registry)
//	GET  /debug/pprof  runtime profiling
func newMux(b *qirana.Broker, timeout time.Duration) *http.ServeMux {
	s := &server{broker: b, timeout: timeout}
	b.PublishExpvar("qirana")
	mux := http.NewServeMux()
	mux.HandleFunc("POST /quote", s.handleQuote)
	mux.HandleFunc("POST /quote/batch", s.handleQuoteBatch)
	mux.HandleFunc("POST /ask", s.handleAsk)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// requestCtx derives the pricing context: the request's own context
// (cancelled when the client goes away) bounded by the per-request
// timeout, which ?timeout_ms= may tighten or loosen per call.
func (s *server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	timeout := s.timeout
	if ms := r.URL.Query().Get("timeout_ms"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v > 0 {
			timeout = time.Duration(v) * time.Millisecond
		}
	}
	if timeout <= 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), timeout)
}

// funcByName maps the wire names onto the pricing functions; empty means
// "use the broker's default".
func funcByName(name string) (*qirana.PricingFunc, error) {
	var f qirana.PricingFunc
	switch strings.ToLower(name) {
	case "":
		return nil, nil
	case "coverage", "weighted_coverage":
		f = qirana.WeightedCoverage
	case "gain", "uniform_gain", "uniform_entropy_gain":
		f = qirana.UniformEntropyGain
	case "shannon", "shannon_entropy":
		f = qirana.ShannonEntropy
	case "qentropy", "q_entropy":
		f = qirana.QEntropy
	default:
		return nil, fmt.Errorf("unknown pricing function %q (want coverage, gain, shannon or qentropy)", name)
	}
	return &f, nil
}

type quoteRequest struct {
	// SQL prices a single query; SQLs prices several. Exactly one of the
	// two must be set.
	SQL  string   `json:"sql,omitempty"`
	SQLs []string `json:"sqls,omitempty"`
	// Func selects the pricing function (coverage, gain, shannon,
	// qentropy); empty uses the broker default.
	Func string `json:"func,omitempty"`
	// Bundle prices SQLs as one bundle bought together.
	Bundle bool `json:"bundle,omitempty"`
}

func (qr *quoteRequest) toPriceRequest() (qirana.PriceRequest, error) {
	fn, err := funcByName(qr.Func)
	if err != nil {
		return qirana.PriceRequest{}, err
	}
	sqls := qr.SQLs
	if qr.SQL != "" {
		if len(sqls) > 0 {
			return qirana.PriceRequest{}, errors.New(`set "sql" or "sqls", not both`)
		}
		sqls = []string{qr.SQL}
	}
	if len(sqls) == 0 {
		return qirana.PriceRequest{}, errors.New(`request carries no queries (set "sql" or "sqls")`)
	}
	return qirana.PriceRequest{SQLs: sqls, Func: fn, Bundle: qr.Bundle}, nil
}

// maxBodyBytes bounds JSON request bodies. A megabyte is orders of
// magnitude beyond any real query text; anything bigger is a mistake or
// an attack, and MaxBytesReader also closes the connection so the client
// cannot keep streaming.
const maxBodyBytes = 1 << 20

// decodeBody decodes a size-capped JSON body into v. On failure it has
// already written the error response (413 for an oversized body, 400
// otherwise) and returns false.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func (s *server) handleQuote(w http.ResponseWriter, r *http.Request) {
	s.price(w, r, false)
}

func (s *server) handleQuoteBatch(w http.ResponseWriter, r *http.Request) {
	s.price(w, r, true)
}

func (s *server) price(w http.ResponseWriter, r *http.Request, batch bool) {
	var qr quoteRequest
	if !decodeBody(w, r, &qr) {
		return
	}
	req, err := qr.toPriceRequest()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !batch && len(req.SQLs) > 1 && !req.Bundle {
		writeError(w, http.StatusBadRequest,
			errors.New("independent multi-query pricing belongs on /quote/batch (or set bundle:true)"))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	resp, err := s.broker.Price(ctx, req)
	if err != nil {
		writeRequestError(w, err)
		return
	}
	writeJSON(w, resp)
}

type askRequest struct {
	Buyer string `json:"buyer"`
	SQL   string `json:"sql"`
	// Refund selects the charge-then-refund settlement model.
	Refund bool `json:"refund,omitempty"`
}

// askResponse is a Receipt plus the materialized answer (Receipt keeps
// Result off the wire by default; the daemon inlines it as strings).
type askResponse struct {
	*qirana.Receipt
	Cols []string   `json:"cols"`
	Rows [][]string `json:"rows"`
}

func (s *server) handleAsk(w http.ResponseWriter, r *http.Request) {
	var ar askRequest
	if !decodeBody(w, r, &ar) {
		return
	}
	if ar.Buyer == "" {
		writeError(w, http.StatusBadRequest, errors.New(`request carries no buyer (set "buyer")`))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	rec, err := s.broker.Purchase(ctx, qirana.PurchaseRequest{Buyer: ar.Buyer, SQL: ar.SQL, Refund: ar.Refund})
	if err != nil {
		writeRequestError(w, err)
		return
	}
	resp := askResponse{Receipt: rec, Cols: rec.Result.Cols, Rows: make([][]string, rec.Result.Len())}
	for i, row := range rec.Result.Rows {
		out := make([]string, len(row))
		for j, v := range row {
			out[j] = v.String()
		}
		resp.Rows[i] = out
	}
	writeJSON(w, resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"support_set_size": s.broker.SupportSetSize(),
		"total_price":      s.broker.TotalPrice(),
		"last_stats":       s.broker.LastStats(),
		"quote_cache":      s.broker.QuoteCacheStats(),
		"quote_cache_len":  s.broker.QuoteCacheLen(),
		"durability":       s.broker.Durability(),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.broker.Metrics())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeRequestError maps a pricing error onto an HTTP status: an expired
// deadline is a gateway timeout, a client-side cancellation a client
// closed request, a ledger-append failure a retryable 503 (the purchase
// charged nobody), anything else a bad request (the broker's remaining
// errors are all input errors; internal invariants panic).
func writeRequestError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		// 499 is nginx's "client closed request"; the client is usually
		// gone, but write it anyway for proxies and tests.
		writeError(w, 499, err)
	case errors.Is(err, qirana.ErrDurability):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
