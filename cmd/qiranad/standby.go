package main

import (
	"math/rand"
	"time"
)

// Standby promotion hardening (DESIGN.md §14). The original probe loop
// had two shadow-promotion hazards: a fixed ticker meant every standby
// in a fleet probed in lockstep (one leader GC pause → every standby
// misses the same beats), and the probe client's timeout equaled the
// probe interval, so a leader that was merely slow — not dead — was
// indistinguishable from a crashed one. The gate below fixes both:
// probes are jittered ±20%, the interval BACKS OFF while a miss streak
// grows (a slow-but-alive leader gets more time to answer, not less),
// and only K *consecutive* misses promote — any successful probe resets
// the streak, so a flapping leader never loses its ledger to an eager
// standby.

// failoverGate decides when a standby may promote.
type failoverGate struct {
	k      int           // consecutive misses required to promote
	base   time.Duration // nominal probe interval
	rng    *rand.Rand
	misses int
}

func newFailoverGate(k int, base time.Duration, seed int64) *failoverGate {
	if k < 1 {
		k = 1
	}
	return &failoverGate{k: k, base: base, rng: rand.New(rand.NewSource(seed))}
}

// success resets the consecutive-miss streak: the leader answered, so
// whatever was accumulating was a blip, not a death.
func (g *failoverGate) success() { g.misses = 0 }

// miss records one failed probe; true means the K-consecutive-miss
// requirement is met and the standby should promote.
func (g *failoverGate) miss() bool {
	g.misses++
	return g.misses >= g.k
}

// wait is the delay before the next probe: the base interval jittered
// ±20% (a fleet of standbys must not probe in phase), doubled per
// consecutive miss up to 4× base.
func (g *failoverGate) wait() time.Duration {
	d := g.base
	for i := 0; i < g.misses && i < 2; i++ {
		d *= 2
	}
	return time.Duration(float64(d) * (0.8 + 0.4*g.rng.Float64()))
}

// probeLoop drives the standby: every gate-paced wakeup it refreshes
// the WAL tail, probes the leader, and promotes after the gate's K
// consecutive misses. Returns when stop closes or after promote runs.
func probeLoop(stop <-chan struct{}, gate *failoverGate, refresh func(), probe func() error, promote func()) {
	timer := time.NewTimer(gate.wait())
	defer timer.Stop()
	for {
		select {
		case <-stop:
			return
		case <-timer.C:
		}
		refresh()
		if err := probe(); err == nil {
			gate.success()
		} else if gate.miss() {
			promote()
			return
		}
		timer.Reset(gate.wait())
	}
}
