package qirana

import (
	"fmt"
	"math"
	"testing"

	"qirana/internal/datagen"
	"qirana/internal/support"
)

// TestSupportSetPreservesForeignKeys verifies a §3.1 property of the
// possible-database space I: because update values are drawn from the
// attribute's (active) domain, every neighboring instance still satisfies
// the world schema's foreign keys — City.CountryCode and
// CountryLanguage.CountryCode always reference an existing Country.
func TestSupportSetPreservesForeignKeys(t *testing.T) {
	db := datagen.World(1)
	set, err := support.GenerateNeighborhood(db, support.DefaultConfig(800, 3))
	if err != nil {
		t.Fatal(err)
	}
	codes := map[string]bool{}
	for _, row := range db.Table("Country").Rows {
		codes[row[0].S] = true
	}
	cityFK := db.Table("City").Rel.AttrIndex("CountryCode")
	for _, el := range set.Elements {
		el.Apply(db)
		for i, row := range db.Table("City").Rows {
			if !codes[row[cityFK].S] {
				el.Undo(db)
				t.Fatalf("city row %d references unknown country %q in a neighbor", i, row[cityFK].S)
			}
		}
		el.Undo(db)
	}
}

// TestGoldenDeterminism pins the end-to-end price of a fixed scenario:
// same seed, same dataset, same query must price identically across runs
// and across the fast/naive paths. A change here means the reproduction's
// outputs shifted — intentional changes should update the constant.
func TestGoldenDeterminism(t *testing.T) {
	mk := func() *Broker {
		db, err := LoadDataset("world", 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewBroker(db, 100, Options{SupportSetSize: 500, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	b1, b2 := mk(), mk()
	const sql = "SELECT Name, Population FROM Country WHERE Continent = 'Europe'"
	p1, err := b1.Quote(sql)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b2.Quote(sql)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("non-deterministic pricing: %v vs %v", p1, p2)
	}
	if p1 <= 0 || p1 >= 40 {
		t.Fatalf("price %g outside the plausible band for a continent slice", p1)
	}
}

// TestBuyerNeverOverpays is the framework's headline buyer guarantee,
// stressed over a long mixed session: cumulative history-aware payments
// stay monotone and never exceed the dataset price.
func TestBuyerNeverOverpays(t *testing.T) {
	db, err := LoadDataset("world", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBroker(db, 100, Options{SupportSetSize: 300, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	session := []string{
		"SELECT * FROM Country WHERE ID < 100",
		"SELECT * FROM Country",
		"SELECT * FROM City",
		"SELECT * FROM CountryLanguage",
		"SELECT Name, Language FROM Country, CountryLanguage WHERE Code = CountryCode",
		"SELECT Continent, count(*) FROM Country GROUP BY Continent",
	}
	prev := 0.0
	for _, sql := range session {
		if _, _, err := b.Ask("greedy", sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		paid := b.TotalPaid("greedy")
		if paid < prev-1e-9 {
			t.Fatalf("payments went down: %g after %g", paid, prev)
		}
		if paid > 100+1e-9 {
			t.Fatalf("buyer overpaid: %g", paid)
		}
		prev = paid
	}
	// After buying every relation, the full dataset is owned.
	if math.Abs(b.TotalPaid("greedy")-100) > 1e-6 {
		t.Fatalf("full ownership should cost exactly the dataset price, paid %g", b.TotalPaid("greedy"))
	}
	_, c, err := b.Ask("greedy", "SELECT SurfaceArea FROM Country")
	if err != nil {
		t.Fatal(err)
	}
	if c != 0 {
		t.Fatalf("owner charged %g", c)
	}
}

func ExampleBroker_Quote() {
	db, _ := LoadDataset("world", 1, 0)
	broker, _ := NewBroker(db, 100, Options{SupportSetSize: 400, Seed: 7})
	free, _ := broker.Quote("SELECT count(*) FROM Country") // cardinality is public
	full, _ := broker.Quote("SELECT * FROM Country")
	fmt.Println(free == 0, full > 0, full <= 100)
	// Output: true true true
}

func ExampleBroker_Ask() {
	db, _ := LoadDataset("world", 1, 0)
	broker, _ := NewBroker(db, 100, Options{SupportSetSize: 400, Seed: 7})
	_, first, _ := broker.Ask("alice", "SELECT Continent, count(*) FROM Country GROUP BY Continent")
	_, again, _ := broker.Ask("alice", "SELECT count(*) FROM Country WHERE Continent = 'Asia'")
	fmt.Println(first > 0, again == 0)
	// Output: true true
}
