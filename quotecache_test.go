package qirana

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// twinBrokers builds a concurrent broker (quote cache on, parallel
// workers) and a serial cold-path reference broker (cache off, Workers=1)
// sharing one database and one support set, so every price the hammered
// broker returns can be checked against a cold serial computation.
func twinBrokers(t *testing.T, workers int) (*Broker, *Broker, *Database) {
	t.Helper()
	db, err := LoadDataset("world", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBroker(db, 100, Options{SupportSetSize: 150, Seed: 5, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := b.SaveSupportSet(&buf); err != nil {
		t.Fatal(err)
	}
	ref, err := NewBrokerFromSupport(db, 100, &buf, Options{QuoteCacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	return b, ref, db
}

// TestConcurrentQuotesMatchColdSerial hammers Broker.Quote and Broker.Ask
// from 16 goroutines with a mix of repeated and per-goroutine fresh SQL,
// asserting every price and charge equals the serial cold-path reference
// bit for bit, and that the repeated queries actually hit the cache.
// Run with -race.
func TestConcurrentQuotesMatchColdSerial(t *testing.T) {
	const goroutines = 16
	b, ref, _ := twinBrokers(t, 4)

	repeated := []string{
		"SELECT Name FROM Country WHERE Continent = 'Asia'",
		"select name from country where continent = 'Asia'", // fingerprint-equal variant
		"SELECT Continent, count(*) FROM Country GROUP BY Continent",
		"SELECT * FROM CountryLanguage WHERE IsOfficial = 'T'",
	}
	fresh := func(g, i int) string {
		return fmt.Sprintf("SELECT Name FROM Country WHERE Population > %d", 100000*(g*8+i)+1)
	}

	// Cold serial references, computed up front on the twin.
	wantQuote := make(map[string]float64)
	for _, sql := range repeated {
		p, err := ref.Quote(sql)
		if err != nil {
			t.Fatal(err)
		}
		wantQuote[sql] = p
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < 4; i++ {
			sql := fresh(g, i)
			p, err := ref.Quote(sql)
			if err != nil {
				t.Fatal(err)
			}
			wantQuote[sql] = p
		}
	}
	// Per-buyer history-aware charge sequences on the reference twin; each
	// goroutine owns one buyer, so the sequence is deterministic.
	wantCharge := make([][]float64, goroutines)
	for g := 0; g < goroutines; g++ {
		buyer := fmt.Sprintf("ref-%d", g)
		for i := 0; i < 4; i++ {
			_, c, err := ref.Ask(buyer, repeated[(g+i)%len(repeated)])
			if err != nil {
				t.Fatal(err)
			}
			wantCharge[g] = append(wantCharge[g], c)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buyer := fmt.Sprintf("buyer-%d", g)
			for i := 0; i < 4; i++ {
				// Repeated quote: must match cold serial exactly.
				sql := repeated[(g+i)%len(repeated)]
				p, err := b.Quote(sql)
				if err != nil {
					errs <- err
					return
				}
				if p != wantQuote[sql] {
					errs <- fmt.Errorf("quote %q = %g, cold serial = %g", sql, p, wantQuote[sql])
					return
				}
				// Fresh quote: unique to this goroutine, always a miss.
				sql = fresh(g, i)
				if p, err = b.Quote(sql); err != nil {
					errs <- err
					return
				}
				if p != wantQuote[sql] {
					errs <- fmt.Errorf("quote %q = %g, cold serial = %g", sql, p, wantQuote[sql])
					return
				}
				// Purchase: history-aware charge must match the reference
				// buyer's sequence.
				_, c, err := b.Ask(buyer, repeated[(g+i)%len(repeated)])
				if err != nil {
					errs <- err
					return
				}
				if c != wantCharge[g][i] {
					errs <- fmt.Errorf("charge %d/%d = %g, cold serial = %g", g, i, c, wantCharge[g][i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := b.QuoteCacheStats()
	if s.Hits == 0 {
		t.Errorf("expected cache hits from repeated quotes, got %+v", s)
	}
	if s.Misses == 0 {
		t.Errorf("expected cache misses from fresh quotes, got %+v", s)
	}
}

// TestBatchQuoteMatchesSolo prices a batch (with duplicates and
// fingerprint-equal variants) through the shared sweep and checks every
// price against a solo cold quote, for a coverage and an entropy
// function.
func TestBatchQuoteMatchesSolo(t *testing.T) {
	b, ref, _ := twinBrokers(t, 2)
	batch := []string{
		"SELECT Name FROM Country WHERE Continent = 'Asia'",
		"SELECT Population FROM Country WHERE ID < 50",
		"select name from country where continent = 'Asia'", // dup by fingerprint
		"SELECT Continent, count(*) FROM Country GROUP BY Continent",
		"SELECT * FROM CountryLanguage WHERE IsOfficial = 'T'",
	}
	for _, fn := range []PricingFunc{WeightedCoverage, ShannonEntropy} {
		got, err := b.QuoteBatchWith(fn, batch)
		if err != nil {
			t.Fatal(err)
		}
		for j, sql := range batch {
			want, err := ref.QuoteWith(fn, sql)
			if err != nil {
				t.Fatal(err)
			}
			if got[j] != want {
				t.Errorf("%v batch[%d] = %g, solo cold = %g", fn, j, got[j], want)
			}
		}
	}
}

// TestMutationInvalidatesQuotes verifies both invalidation channels: a
// point update to the database (table version counters move) and a weight
// refit (weights epoch moves) must each reprice cached queries.
func TestMutationInvalidatesQuotes(t *testing.T) {
	b, ref, db := twinBrokers(t, 2)
	sql := "SELECT Name FROM Country WHERE Population > 100000000"

	p0, err := b.Quote(sql)
	if err != nil {
		t.Fatal(err)
	}
	if p1, _ := b.Quote(sql); p1 != p0 {
		t.Fatalf("warm quote %g != first quote %g", p1, p0)
	}

	// Point update: push a country over the predicate threshold.
	country := db.Table("Country")
	country.Set(3, 7, NewInt(200000000)) // attr 7 = Population
	got, err := b.Quote(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Quote(sql) // cache-less twin cold-computes on the mutated db
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("after point update: cached broker %g, cold %g", got, want)
	}

	// Weight refit: scale two elements' weights, keeping the sum.
	w := make([]float64, b.SupportSetSize())
	per := 100 / float64(len(w))
	for i := range w {
		w[i] = per
	}
	w[0], w[1] = per*1.5, per*0.5
	if err := b.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	if err := ref.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	got, err = b.Quote(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err = ref.Quote(sql)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("after weight refit: cached broker %g, cold %g", got, want)
	}
}
