GO ?= go

.PHONY: all build test race bench json-bench vet lint lint-dup fuzz crash chaos bench-compare throughput serve cluster

all: build vet test

build:
	$(GO) build ./...

test: vet
	$(GO) test ./...

# Race-detector run over the whole module. The parallel differential test
# (internal/pricing) forces GOMAXPROCS=4 and runs every pricing path with
# Workers=4, so this doubles as the shared-read correctness gate at CI
# scale factors.
race:
	$(GO) test -race ./...

vet: lint-dup
	$(GO) vet ./...

# The lowercase-name helper lives in internal/sqlengine/ast (LowerName);
# private copies used to accumulate in the checker/exec/plan layers and
# drift. Fail if a new one appears.
lint-dup:
	@if grep -rn 'func lower(' internal/disagree internal/sqlengine/exec internal/sqlengine/plan --include='*.go'; then \
		echo 'duplicate lower() helper: use ast.LowerName'; exit 1; fi

# Deprecated-wrapper gate. The context-free Quote*/Ask* convenience
# wrappers on Broker are frozen for compatibility (their replacements are
# Price and Purchase, which carry contexts, provenance and the
# approximate-pricing controls); fail if any non-test code outside their
# definitions in qirana.go still calls one. staticcheck — whose SA1019
# catches the same thing module-wide plus its full suite — runs when
# installed; locally without it the target degrades to the grep gate
# (CI installs and runs it).
lint: lint-dup
	@bad=$$(grep -rnE '\.(QuoteBatchWith|QuoteBatch|QuoteBundle|QuoteWith|Quote|AskWithRefund|Ask)\(' \
		--include='*.go' --exclude='*_test.go' cmd examples internal *.go \
		| grep -v '^qirana\.go:' || true); \
	if [ -n "$$bad" ]; then \
		echo "$$bad"; \
		echo 'deprecated wrapper call: use Broker.Price / Broker.Purchase (see qirana.go Deprecated notes)'; \
		exit 1; fi
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo 'lint: staticcheck not installed, skipping (CI runs it; go install honnef.co/go/tools/cmd/staticcheck@latest)'; fi

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Machine-readable pricing benchmarks (Fig 4d/5a/5b groups at workers 1
# and NumCPU); writes BENCH_pricing.json for cross-PR perf tracking.
json-bench:
	$(GO) run ./cmd/bench

# Quick fuzz passes: the SQL lexer+parser (seeded from the workload query
# corpus) and the tiered delta checker (random ± updates differenced
# against full re-runs), plus the committed regression corpora in
# testdata/fuzz.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/sqlengine/parser -fuzz FuzzParse -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sqlengine/parser -fuzz FuzzPrepare -fuzztime $(FUZZTIME)
	$(GO) test ./internal/disagree -fuzz FuzzDeltaTiers -fuzztime $(FUZZTIME)

# Fault-injection suite under the race detector: the crash matrix
# kills-and-recovers the durable broker at every ledger/snapshot
# failpoint and every torn-write offset, asserting the recovered broker
# is bit-identical to a never-crashed twin (DESIGN.md §9), and the
# cluster torture kills the leader mid-purchase at every ledger
# failpoint and fails over to the WAL-tailing standby (DESIGN.md §12).
crash:
	$(GO) test -race -count=1 \
		-run 'Crash|Torn|Truncat|Durab|Recover|Ledger|Snapshot|Cluster' \
		. ./internal/durable ./internal/httpapi
	$(GO) test -race -count=1 ./internal/failpoint

# Shard chaos suite under the race detector (DESIGN.md §14): every shard
# behind a fault-injecting proxy (drops, 500s, delays, trickle bodies,
# flapping, hard-down). Transient faults must leave prices AND Stats
# bit-identical to a never-faulted twin; a hard outage must serve
# degraded upper-bound quotes (never a wrong price, never a 503 for a
# quote), refuse purchases, and reconcile exact after heal. Also covers
# the breaker/retry/hedge unit layer and the standby promotion gate.
chaos:
	$(GO) test -race -count=1 \
		-run 'Chaos|Degraded|Breaker|Hedge|Retry|Flap|Partition|EWMA|Backoff|ParentCancel|FaultCounters|FailoverGate|ProbeLoop' \
		. ./internal/shard ./internal/httpapi ./cmd/qiranad

# Re-run the pricing benchmarks at a reduced scale and compare against the
# committed BENCH_pricing.json; exits nonzero on a >20% regression. The
# host's noise comes in multi-minute fast/slow windows, so the gate takes
# the best of many reps while the committed baseline is a single
# unmined measurement — false positives need a real slowdown, not an
# unlucky window.
bench-compare:
	$(GO) run ./cmd/bench -support 250 -min-time 300ms -reps 9 \
		-out /tmp/BENCH_new.json -compare BENCH_pricing.json

# Broker-frontend quote throughput only (repeated vs unique traffic mixes,
# 1 and NumCPU concurrent clients); prints the warm/cold speedup.
throughput:
	$(GO) run ./cmd/bench -groups quote -out /tmp/BENCH_quote.json

# Start the HTTP pricing daemon on localhost:8080 (world dataset, $$100).
# See README "Running qiranad" for the endpoint surface and curl examples.
serve:
	$(GO) run ./cmd/qiranad -dataset world -price 100 -support 1000 -addr localhost:8080

# Start a demo cluster in one process: a durable fan-out router on :8090
# over 3 in-process shard workers, plus a read-only standby mirror on
# :8091 tailing the router's ledger. See README "Running a cluster".
CLUSTER_DATA ?= /tmp/qirana-cluster
cluster:
	$(GO) run ./cmd/qirouter -cluster 3 -dataset world -price 100 -support 1000 \
		-data $(CLUSTER_DATA) -addr localhost:8090 -standby-addr localhost:8091
