GO ?= go

.PHONY: all build test race bench json-bench vet

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector run over the whole module. The parallel differential test
# (internal/pricing) forces GOMAXPROCS=4 and runs every pricing path with
# Workers=4, so this doubles as the shared-read correctness gate at CI
# scale factors.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Machine-readable pricing benchmarks (Fig 4d/5a/5b groups at workers 1
# and NumCPU); writes BENCH_pricing.json for cross-PR perf tracking.
json-bench:
	$(GO) run ./cmd/bench
