package qirana

// Degraded-mode quotes (DESIGN.md §14). When a shard's slice is
// unreachable past the fan-out's retry budget, an exact quote cannot be
// assembled — but a SOUND one can: the dead slices are priced exactly
// like unsampled weight in the PR 9 approximate machinery, using the
// live slices as the "sample". The coverage estimator charges every
// missing element as if it disagreed (its weight in full); the entropy
// estimators refine every missing element into its own partition
// (maximum information). Both are the worst case the buyer could have
// learned from the missing slice, so
//
//	degraded price ≥ exact price
//
// for all four pricing functions, and the arbitrage-freeness argument
// for approximate quotes (internal/pricing/approx.go) carries over
// unchanged. The quote is served with provenance — degraded: true, the
// missing-slice fraction, point estimate and CI — and cached under the
// same "a|" key as a sampled quote, so the background refiner and the
// purchase-time reconcile settle it to the exact price once the cluster
// heals. Purchases never take this path: charging requires the exact
// sweep, so a purchase during an outage still fails 503 and no partial
// merge ever charges a buyer.

import (
	"context"
	"errors"
	"fmt"

	"qirana/internal/sqlengine/exec"
)

// canDegrade reports whether a failed sweep may fall back to a degraded
// quote: degradation enabled, the caller still waiting, the failure a
// shard outage (not a bad request), and the installed sweeper able to
// deliver partial slices. Callers hold mu.RLock.
func (b *Broker) canDegrade(ctx context.Context, err error) bool {
	if b.opts.DisableDegradedQuotes || ctx.Err() != nil {
		return false
	}
	if !errors.Is(err, ErrShardUnavailable) {
		return false
	}
	_, ok := b.sweeper.(DegradedSweeper)
	return ok
}

// degradedQuoteLocked prices qs as one bundle with part of the cluster
// unreachable, serving the upper bound described above. An existing
// "a|" entry (refined or sampled) short-circuits the sweep — a cached
// sound answer beats re-walking a broken cluster. Callers hold mu.RLock.
func (b *Broker) degradedQuoteLocked(ctx context.Context, fn PricingFunc, qs []*exec.Query, maxErr float64) (QuoteInfo, error) {
	ds, ok := b.sweeper.(DegradedSweeper)
	if !ok {
		return QuoteInfo{}, ErrShardUnavailable
	}
	key := b.approxKey(fn, qs)
	compute := func() (any, error) {
		spec := SweepSpec{Bundle: true, SupportGen: b.supportGen}
		switch fn {
		case WeightedCoverage, UniformEntropyGain:
			dis, stats, live, err := ds.SweepBitsDegraded(ctx, sqlsOf(qs), spec)
			if err != nil {
				return nil, err
			}
			est, err := b.engine.EstimateFromSampledDisagreements(fn, dis[0], live)
			if err != nil {
				return nil, err
			}
			return approxEntry{est: est, stats: stats[0], degraded: true, missing: missingFrac(live)}, nil
		case ShannonEntropy, QEntropy:
			elems, stats, live, err := ds.SweepHashesDegraded(ctx, sqlsOf(qs), spec)
			if err != nil {
				return nil, err
			}
			est, err := b.engine.EstimateFromSampledHashes(fn, elems[0], live)
			if err != nil {
				return nil, err
			}
			return approxEntry{est: est, stats: stats[0], degraded: true, missing: missingFrac(live)}, nil
		}
		return nil, fmt.Errorf("unknown pricing function %v", fn)
	}
	v, cached, err := b.cached(ctx, key, compute)
	if err != nil {
		return QuoteInfo{}, err
	}
	ent := v.(approxEntry)
	if !ent.refined {
		// Fresh or cached, keep the refiner armed: the upgrade to exact
		// only succeeds once the cluster heals, and each failed attempt
		// is dropped, not requeued.
		b.enqueueRefine(key, fn, sqlsOf(qs))
	}
	return b.approxInfo(ent, cached, maxErr), nil
}

// missingFrac is the fraction of support-set elements whose slice did
// not answer.
func missingFrac(live []bool) float64 {
	if len(live) == 0 {
		return 0
	}
	miss := 0
	for _, ok := range live {
		if !ok {
			miss++
		}
	}
	return float64(miss) / float64(len(live))
}
