package qirana_test

// The cluster suite lives in the external test package: internal/shard
// imports qirana, so an in-package test would be an import cycle. The
// ground truth everywhere is a single-node twin over the same dataset,
// seed and support size — sharding is pure mechanism, so every routed
// price must match the twin bit-for-bit (price AND Stats), never merely
// within epsilon.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"qirana"
	"qirana/internal/durable"
	"qirana/internal/failpoint"
	"qirana/internal/httpapi"
	"qirana/internal/shard"
)

// twinPair builds two independent brokers over one dataset with the same
// seed: identical support sets, zero shared caches.
func twinPair(t *testing.T, dataset string, seed int64, scale float64, size int) (*qirana.Database, *qirana.Broker, *qirana.Broker) {
	t.Helper()
	db, err := qirana.LoadDataset(dataset, seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	opt := qirana.Options{SupportSetSize: size, Seed: 7}
	single, err := qirana.NewBroker(db, 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := qirana.NewBroker(db, 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	return db, single, routed
}

func attachCluster(t *testing.T, routed *qirana.Broker, db *qirana.Database, n int, size int) *shard.Cluster {
	t.Helper()
	cl, err := shard.AttachLocal(routed, db, n, qirana.Options{SupportSetSize: size, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

var clusterFns = []qirana.PricingFunc{
	qirana.WeightedCoverage, qirana.UniformEntropyGain, qirana.ShannonEntropy, qirana.QEntropy,
}

// assertSamePrice pins a routed response to the twin's: totals, per-query
// prices, per-query stats and the summed stats must all be identical.
func assertSamePrice(t *testing.T, label string, got, want *qirana.PriceResponse) {
	t.Helper()
	if got.Total != want.Total {
		t.Fatalf("%s: routed total %v != single-node %v", label, got.Total, want.Total)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: routed stats %+v != single-node %+v", label, got.Stats, want.Stats)
	}
	if len(got.Prices) != len(want.Prices) {
		t.Fatalf("%s: routed %d prices, single-node %d", label, len(got.Prices), len(want.Prices))
	}
	for i := range got.Prices {
		if got.Prices[i] != want.Prices[i] {
			t.Fatalf("%s: price[%d] routed %v != single-node %v", label, i, got.Prices[i], want.Prices[i])
		}
		if got.PerQuery[i].Stats != want.PerQuery[i].Stats {
			t.Fatalf("%s: stats[%d] routed %+v != single-node %+v", label, i, got.PerQuery[i].Stats, want.PerQuery[i].Stats)
		}
	}
}

// TestClusterShardedBitIdenticalDifferential is the tentpole contract: a
// 3-shard cluster prices bit-identically to a single node across all
// five generator schemas, for every pricing function, for solo quotes,
// multi-query batches, bundles and purchase charges. testing/quick
// drives extra parameterized probes per schema.
func TestClusterShardedBitIdenticalDifferential(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name  string
		seed  int64
		scale float64
		size  int
		tmpl  string // $1 placeholder, integer domain
		mod   int
		sqls  []string
	}{
		{"world-int", 1, 0, 200, "SELECT Name FROM Country WHERE Population > $1", 100000000, []string{
			"SELECT Name FROM Country WHERE Population > 1000000",
			"SELECT Continent, count(*) FROM Country GROUP BY Continent",
			"SELECT * FROM CountryLanguage",
		}},
		{"world-str", 1, 0, 200, "SELECT count(*) FROM Country WHERE Population < $1", 100000000, []string{
			"SELECT count(*) FROM Country WHERE Continent = 'Asia'",
			"SELECT Name FROM Country WHERE Continent = 'Europe'",
		}},
		{"carcrash", 2, 300, 150, "SELECT State, min(Age) FROM crash WHERE Age > $1 GROUP BY State", 80, []string{
			"SELECT count(*) FROM crash WHERE Age > 40",
			"SELECT State FROM crash WHERE Age < 21",
		}},
		{"ssb", 3, 0.001, 120, "SELECT c_city, max(lo_revenue) FROM customer, lineorder WHERE c_custkey = lo_custkey AND lo_revenue > $1 GROUP BY c_city", 5000000, []string{
			"SELECT count(*) FROM lineorder WHERE lo_revenue > 4000000",
		}},
		{"tpch", 4, 0.002, 120, "SELECT s_name FROM supplier WHERE s_acctbal > $1", 9000, []string{
			"SELECT count(*) FROM supplier WHERE s_acctbal < 1000",
		}},
		{"dblp", 5, 0.02, 120, "SELECT count(*) FROM dblp WHERE ToNodeId < $1", 2000, []string{
			"SELECT count(*) FROM dblp WHERE FromNodeId < 500",
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dataset := strings.SplitN(tc.name, "-", 2)[0]
			db, single, routed := twinPair(t, dataset, tc.seed, tc.scale, tc.size)
			attachCluster(t, routed, db, 3, tc.size)

			for _, fn := range clusterFns {
				fn := fn
				label := fmt.Sprintf("fn=%v", fn)
				// Solo quotes, cold on both sides.
				for _, sql := range tc.sqls {
					want, err := single.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}, Func: &fn})
					if err != nil {
						t.Fatal(err)
					}
					got, err := routed.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}, Func: &fn})
					if err != nil {
						t.Fatal(err)
					}
					assertSamePrice(t, label+" solo "+sql, got, want)
				}
				// Multi-query batch in one sweep.
				want, err := single.Price(ctx, qirana.PriceRequest{SQLs: tc.sqls, Func: &fn})
				if err != nil {
					t.Fatal(err)
				}
				got, err := routed.Price(ctx, qirana.PriceRequest{SQLs: tc.sqls, Func: &fn})
				if err != nil {
					t.Fatal(err)
				}
				assertSamePrice(t, label+" batch", got, want)
				// Bundle (sub-additive, one price).
				want, err = single.Price(ctx, qirana.PriceRequest{SQLs: tc.sqls, Func: &fn, Bundle: true})
				if err != nil {
					t.Fatal(err)
				}
				got, err = routed.Price(ctx, qirana.PriceRequest{SQLs: tc.sqls, Func: &fn, Bundle: true})
				if err != nil {
					t.Fatal(err)
				}
				assertSamePrice(t, label+" bundle", got, want)
			}

			// Parameterized probes: random instantiations of the schema's
			// template must agree cold-vs-cold.
			prop := func(pick uint16) bool {
				sql := strings.Replace(tc.tmpl, "$1", fmt.Sprint(int(pick)%tc.mod), 1)
				want, err := single.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}})
				if err != nil {
					t.Fatal(err)
				}
				got, err := routed.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}})
				if err != nil {
					t.Fatal(err)
				}
				if got.Total != want.Total || got.Stats != want.Stats {
					t.Errorf("pick=%d: routed (%v, %+v) != single-node (%v, %+v)",
						pick, got.Total, got.Stats, want.Total, want.Stats)
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 3}); err != nil {
				t.Error(err)
			}

			// Purchases route their charge sweep through the shards too:
			// the full money trail must match the twin's.
			buys := []struct{ buyer, sql string }{
				{"alice", tc.sqls[0]},
				{"bob", tc.sqls[len(tc.sqls)-1]},
				{"alice", tc.sqls[0]}, // re-buy: net must be 0 on both
			}
			for i, p := range buys {
				want, err := single.Purchase(ctx, qirana.PurchaseRequest{Buyer: p.buyer, SQL: p.sql})
				if err != nil {
					t.Fatal(err)
				}
				got, err := routed.Purchase(ctx, qirana.PurchaseRequest{Buyer: p.buyer, SQL: p.sql})
				if err != nil {
					t.Fatal(err)
				}
				if got.Gross != want.Gross || got.Net != want.Net || got.Balance != want.Balance {
					t.Fatalf("purchase %d: routed %+v != single-node %+v", i, got, want)
				}
			}
			if net := mustBuy(t, routed, "alice", tc.sqls[0]).Net; net != 0 {
				t.Fatalf("re-purchase of owned query: net %v, want 0", net)
			}
		})
	}
}

// newRouterAPI serves the routed broker through the real HTTP layer, so
// error-status assertions exercise the production mapping.
func newRouterAPI(b *qirana.Broker) http.Handler {
	return httpapi.New(b, 0)
}

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func mustBuy(t *testing.T, b *qirana.Broker, buyer, sql string) *qirana.Receipt {
	t.Helper()
	rec, err := b.Purchase(context.Background(), qirana.PurchaseRequest{Buyer: buyer, SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestClusterShardRowsSwept proves the work bound: on a cold quote over
// an N-shard cluster, each shard sweeps at most ceil(|S|/N)+1 support
// elements — its own slice and nothing more — and a warm quote sweeps
// nothing anywhere.
func TestClusterShardRowsSwept(t *testing.T) {
	const size, n = 200, 3
	db, _, routed := twinPair(t, "world", 1, 0, size)
	cl := attachCluster(t, routed, db, n, size)

	sweptPerShard := func() []uint64 {
		out := make([]uint64, len(cl.Brokers))
		for i, b := range cl.Brokers {
			out[i] = b.Metrics().Counters["shard_rows_swept"]
		}
		return out
	}
	before := sweptPerShard()
	if _, err := routed.Quote("SELECT Name FROM Country WHERE Population > 5000000"); err != nil {
		t.Fatal(err)
	}
	after := sweptPerShard()
	bound := uint64((size+n-1)/n + 1)
	var total uint64
	for i := range after {
		d := after[i] - before[i]
		if d == 0 {
			t.Errorf("shard %d swept nothing on a cold quote", i)
		}
		if d > bound {
			t.Errorf("shard %d swept %d rows on one cold quote, bound is %d", i, d, bound)
		}
		total += d
	}
	if total != size {
		t.Errorf("shards swept %d rows in total, want exactly |S| = %d", total, size)
	}

	// Warm path: same quote again — served from the router's cache, no
	// shard sweeps at all.
	before = sweptPerShard()
	if _, err := routed.Quote("SELECT Name FROM Country WHERE Population > 5000000"); err != nil {
		t.Fatal(err)
	}
	after = sweptPerShard()
	for i := range after {
		if after[i] != before[i] {
			t.Errorf("shard %d swept %d rows on a warm quote, want 0", i, after[i]-before[i])
		}
	}

	// Observability rides along: the router recorded the fan-out and the
	// merge, the shards recorded their sweeps.
	rm := routed.Metrics()
	if rm.Counters["router_fanout_rpcs"] != n {
		t.Errorf("router_fanout_rpcs = %d, want %d", rm.Counters["router_fanout_rpcs"], n)
	}
	for _, name := range []string{"router_fanout", "router_merge", "router_straggler_gap"} {
		if rm.Latencies[name].Count == 0 {
			t.Errorf("router latency %q was never observed", name)
		}
	}
	for i, b := range cl.Brokers {
		sm := b.Metrics()
		if sm.Counters["shard_sweep_requests"] == 0 {
			t.Errorf("shard %d recorded no sweep requests", i)
		}
		if sm.Latencies["shard_sweep"].Count == 0 {
			t.Errorf("shard %d recorded no sweep latency", i)
		}
	}
}

// flakyShard fronts a shard handler with a switchable partition: while
// down, every request answers 503 without reaching the shard.
type flakyShard struct {
	h    http.Handler
	down atomic.Bool
}

func (f *flakyShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.down.Load() {
		http.Error(w, `{"error": "network partition"}`, http.StatusServiceUnavailable)
		return
	}
	f.h.ServeHTTP(w, r)
}

// TestClusterPartitionRecovery drives the router error semantics end to
// end: with one shard partitioned away — and degraded-mode quotes
// explicitly disabled — a cold quote fails with ErrShardUnavailable
// (503 + Retry-After over HTTP) and no partial price is ever merged or
// cached; the shard's circuit breaker opens under the repeated faults;
// once the shard heals and the cooldown elapses, the same quote prices
// bit-identically to a single node. (The degraded-quotes default is
// covered by TestClusterDegradedQuoteUpperBound in chaos_test.go.)
func TestClusterPartitionRecovery(t *testing.T) {
	const size = 150
	db, single, _ := twinPair(t, "world", 1, 0, size)
	// Same dataset, seed and size as the twin — identical support set —
	// but with the degraded fallback off, so outages surface as errors.
	routed, err := qirana.NewBroker(db, 100, qirana.Options{SupportSetSize: size, Seed: 7, DisableDegradedQuotes: true})
	if err != nil {
		t.Fatal(err)
	}

	brokers, err := shard.NewShardBrokers(routed, db, 3, qirana.Options{SupportSetSize: size, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	flakies := make([]*flakyShard, 3)
	urls := make([]string, 3)
	for i, b := range brokers {
		flakies[i] = &flakyShard{h: shard.Handler(b)}
		srv := httptest.NewServer(flakies[i])
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	fan, err := shard.Connect(context.Background(), urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A tight policy so the breaker's whole lifecycle fits in the test:
	// 2 attempts per sweep, trip after 4 faults, 50ms cooldown.
	pol := shard.DefaultFaultPolicy()
	pol.MaxAttempts = 2
	pol.RetryBase, pol.RetryMax = time.Millisecond, 4*time.Millisecond
	pol.BreakerThreshold = 4
	pol.BreakerCooldown = 50 * time.Millisecond
	pol.DisableHedging = true
	fan.SetPolicy(pol)
	routed.SetRemoteSweeper(fan)

	// Partition shard 1 and quote cold: the whole fan-out must fail.
	flakies[1].down.Store(true)
	const sql = "SELECT Name FROM Country WHERE Population > 2000000"
	if _, err := routed.Quote(sql); !errors.Is(err, qirana.ErrShardUnavailable) {
		t.Fatalf("quote with a partitioned shard: err=%v, want ErrShardUnavailable", err)
	}

	// Over HTTP the failure is a retryable 503, and purchases refuse the
	// same way — nothing was charged.
	api := newRouterAPI(routed)
	rr := postJSON(t, api, "/quote", fmt.Sprintf(`{"sql": %q}`, sql))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("/quote during partition: status %d, want 503 (body %s)", rr.Code, rr.Body)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("/quote 503 is missing Retry-After")
	}
	rr = postJSON(t, api, "/ask", fmt.Sprintf(`{"buyer": "alice", "sql": %q}`, sql))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("/ask during partition: status %d, want 503 (body %s)", rr.Code, rr.Body)
	}
	if paid := routed.TotalPaid("alice"); paid != 0 {
		t.Fatalf("alice was charged %v during a failed fan-out", paid)
	}

	// A gen the cluster was not connected at is a mismatch, not a retry.
	if _, _, err := fan.SweepBits(context.Background(), []string{sql}, qirana.SweepSpec{SupportGen: routed.SupportGen() + 1}); !errors.Is(err, qirana.ErrSupportMismatch) {
		t.Fatalf("stale-gen sweep: err=%v, want ErrSupportMismatch", err)
	}

	// The repeated faults tripped shard 1's breaker: the next failure is
	// a fast reject carrying a machine-readable Retry-After hint.
	if v := routed.Metrics().Counters["breaker_open"]; v == 0 {
		t.Error("breaker_open never moved under a persistent partition")
	}
	if _, err := routed.Quote(sql + " "); err == nil {
		t.Fatal("open breaker: quote succeeded during the partition")
	} else if hint, ok := qirana.RetryAfterHint(err); !ok || hint <= 0 {
		t.Fatalf("open-breaker error carries no Retry-After hint: %v", err)
	}

	// Heal the partition and wait out the cooldown: the half-open probe
	// re-admits the shard, and the quote must now be cold-computed
	// (nothing partial was cached) and bit-identical to the twin.
	flakies[1].down.Store(false)
	time.Sleep(pol.BreakerCooldown + 20*time.Millisecond)
	want, err := single.Price(context.Background(), qirana.PriceRequest{SQLs: []string{sql}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := routed.Price(context.Background(), qirana.PriceRequest{SQLs: []string{sql}})
	if err != nil {
		t.Fatal(err)
	}
	if got.PerQuery[0].Cached {
		t.Fatal("post-partition quote was served from cache: a partial result leaked in")
	}
	assertSamePrice(t, "post-partition", got, want)
	if errs := routed.Metrics().Counters["router_shard_errors"]; errs == 0 {
		t.Error("router_shard_errors counter never moved")
	}
	if v := routed.Metrics().Counters["breaker_close"]; v == 0 {
		t.Error("breaker never recorded its recovery after the heal")
	}
}

// TestClusterShardSweepGenMismatch409 pins the wire-level contract: a
// slice request carrying the wrong support generation or checksum is a
// 409 at the shard, and the shard refuses purchases outright (503).
func TestClusterShardSweepGenMismatch409(t *testing.T) {
	const size = 100
	db, _, routed := twinPair(t, "world", 1, 0, size)
	brokers, err := shard.NewShardBrokers(routed, db, 1, qirana.Options{SupportSetSize: size, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(shard.Handler(brokers[0]))
	t.Cleanup(srv.Close)

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+"/shard/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	wrongGen := fmt.Sprintf(`{"sqls": ["SELECT Name FROM Country"], "lo": 0, "hi": %d, "support_gen": 99, "support_sum": %d}`,
		size, brokers[0].SupportChecksum())
	if resp := post(wrongGen); resp.StatusCode != http.StatusConflict {
		t.Fatalf("wrong gen: status %d, want 409", resp.StatusCode)
	}
	wrongSum := fmt.Sprintf(`{"sqls": ["SELECT Name FROM Country"], "lo": 0, "hi": %d, "support_gen": %d, "support_sum": 1}`,
		size, brokers[0].SupportGen())
	if resp := post(wrongSum); resp.StatusCode != http.StatusConflict {
		t.Fatalf("wrong checksum: status %d, want 409", resp.StatusCode)
	}
	badSlice := fmt.Sprintf(`{"sqls": ["SELECT Name FROM Country"], "lo": 5, "hi": %d, "support_gen": %d, "support_sum": %d}`,
		size+1, brokers[0].SupportGen(), brokers[0].SupportChecksum())
	if resp := post(badSlice); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range slice: status %d, want 400", resp.StatusCode)
	}
	if _, err := brokers[0].Purchase(context.Background(), qirana.PurchaseRequest{Buyer: "eve", SQL: "SELECT Name FROM Country"}); !errors.Is(err, qirana.ErrReadOnly) {
		t.Fatalf("purchase on a shard worker: err=%v, want ErrReadOnly", err)
	}
}

// TestClusterFailoverCrashRecovery is the kill-node torture: a durable
// leader fronting a 3-shard cluster dies mid-purchase at each ledger
// failpoint; the hot standby tails its directory, promotes, and must
// agree bit-for-bit with a never-crashed twin — acknowledged purchases
// survive exactly once, unacknowledged ones vanish, and re-buying an
// owned answer charges zero.
func TestClusterFailoverCrashRecovery(t *testing.T) {
	db, err := qirana.LoadDataset("world", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := qirana.Options{SupportSetSize: 120, Seed: 7}
	buys := []struct{ buyer, sql string }{
		{"alice", "SELECT Continent FROM Country"},
		{"bob", "SELECT Name FROM Country WHERE Continent = 'Asia'"},
		{"alice", "SELECT Continent, count(*) FROM Country GROUP BY Continent"},
		{"carol", "SELECT count(*) FROM Country WHERE Continent = 'Asia'"},
	}
	newTwinAt := func(k int) *qirana.Broker {
		tw, err := qirana.NewBroker(db, 100, opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			mustBuy(t, tw, buys[i].buyer, buys[i].sql)
		}
		return tw
	}
	cases := []struct {
		fp      string
		arm     func(k int)
		durable bool // the in-flight purchase is on disk when the leader dies
	}{
		{durable.FpLedgerAppend, func(k int) { failpoint.EnableAfter(durable.FpLedgerAppend, nil, k) }, false},
		{durable.FpLedgerWrite, func(k int) { failpoint.EnableShortWriteAfter(durable.FpLedgerWrite, 13, nil, k) }, false},
		{durable.FpLedgerFsync, func(k int) { failpoint.EnableAfter(durable.FpLedgerFsync, nil, k) }, true},
		{durable.FpLedgerAck, func(k int) { failpoint.EnableAfter(durable.FpLedgerAck, nil, k) }, true},
	}
	for _, tc := range cases {
		for k := 1; k < len(buys); k++ {
			t.Run(fmt.Sprintf("%s/purchase-%d", tc.fp, k), func(t *testing.T) {
				failpoint.Reset()
				t.Cleanup(failpoint.Reset)
				dir := t.TempDir()
				lopt := opt
				lopt.DataDir = dir
				leader, err := qirana.NewBroker(db, 100, lopt)
				if err != nil {
					t.Fatal(err)
				}
				cl, err := shard.AttachLocal(leader, db, 3, opt)
				if err != nil {
					t.Fatal(err)
				}
				defer cl.Close()

				// The standby tails the leader's directory while it runs.
				follower, err := qirana.OpenFollower(dir, db, opt)
				if err != nil {
					t.Fatal(err)
				}

				tc.arm(k)
				ctx := context.Background()
				for i := 0; i < len(buys); i++ {
					_, err := leader.Purchase(ctx, qirana.PurchaseRequest{Buyer: buys[i].buyer, SQL: buys[i].sql})
					if i < k && err != nil {
						t.Fatalf("purchase %d failed before the armed fault: %v", i, err)
					}
					if i == k {
						if !errors.Is(err, qirana.ErrDurability) {
							t.Fatalf("faulted purchase %d: err=%v, want ErrDurability", k, err)
						}
						break // the leader "dies" here: never Closed, never used again
					}
				}
				failpoint.Reset()

				// Pre-promotion the standby is a read-only mirror: quotes
				// work, purchases are refused.
				if err := follower.Refresh(); err != nil {
					t.Fatalf("standby refresh over the dead leader's directory: %v", err)
				}
				mirror := follower.Broker()
				if _, err := mirror.Purchase(ctx, qirana.PurchaseRequest{Buyer: "eve", SQL: buys[0].sql}); !errors.Is(err, qirana.ErrReadOnly) {
					t.Fatalf("standby purchase before promotion: err=%v, want ErrReadOnly", err)
				}

				promoted, err := follower.Promote()
				if err != nil {
					t.Fatalf("promote: %v", err)
				}
				defer promoted.Close()
				if _, err := follower.Promote(); err == nil {
					t.Fatal("second promotion must be refused")
				}

				// The promoted standby must equal a twin that saw exactly
				// the acknowledged purchases — plus the ambiguous one iff
				// it hit the disk before the fault.
				applied := k
				if tc.durable {
					applied = k + 1
				}
				tw := newTwinAt(applied)
				buyers := map[string]bool{}
				for _, p := range buys {
					buyers[p.buyer] = true
				}
				for buyer := range buyers {
					if got, want := promoted.TotalPaid(buyer), tw.TotalPaid(buyer); got != want {
						t.Fatalf("buyer %s after failover: balance %v, twin %v", buyer, got, want)
					}
				}
				// Replaying the remaining purchases on the promoted broker
				// charges exactly what the twin charges: nothing was lost,
				// nothing double-charged.
				for i := applied; i < len(buys); i++ {
					got := mustBuy(t, promoted, buys[i].buyer, buys[i].sql)
					want := mustBuy(t, tw, buys[i].buyer, buys[i].sql)
					if got.Gross != want.Gross || got.Net != want.Net || got.Balance != want.Balance {
						t.Fatalf("post-failover purchase %d: %+v != twin %+v", i, got, want)
					}
				}
				// Re-buying an acknowledged answer is free: the history
				// survived the failover.
				if applied > 0 {
					if net := mustBuy(t, promoted, buys[0].buyer, buys[0].sql).Net; net != 0 {
						t.Fatalf("re-purchase of an owned answer after failover: net %v, want 0", net)
					}
				}
			})
		}
	}
}

// TestClusterFollowerTailsLiveLedger pins the tailing semantics: a
// follower refreshed after each live purchase converges on the leader's
// balances without ever disturbing the leader's ledger file.
func TestClusterFollowerTailsLiveLedger(t *testing.T) {
	db, err := qirana.LoadDataset("world", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := qirana.Options{SupportSetSize: 80, Seed: 7}
	dir := t.TempDir()
	lopt := opt
	lopt.DataDir = dir
	leader, err := qirana.NewBroker(db, 100, lopt)
	if err != nil {
		t.Fatal(err)
	}
	defer leader.Close()
	follower, err := qirana.OpenFollower(dir, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	sqls := []string{
		"SELECT Continent FROM Country",
		"SELECT Name FROM Country WHERE Continent = 'Asia'",
		"SELECT count(*) FROM CountryLanguage",
	}
	for i, sql := range sqls {
		mustBuy(t, leader, "alice", sql)
		if err := follower.Refresh(); err != nil {
			t.Fatalf("refresh after purchase %d: %v", i, err)
		}
		if got, want := follower.Broker().TotalPaid("alice"), leader.TotalPaid("alice"); got != want {
			t.Fatalf("after purchase %d: follower balance %v, leader %v", i, got, want)
		}
		if follower.AppliedSeq() == 0 {
			t.Fatalf("follower applied no ledger records after purchase %d", i)
		}
	}
	if follower.Promoted() {
		t.Fatal("follower reports promoted without Promote")
	}
}
