package qirana_test

// Approximate fast-path proofs (DESIGN.md §13). The contract under test:
//
//   1. SOUNDNESS — an approximate quote is a guaranteed upper bound on
//      the exact price, for every pricing function, every error target
//      and every generator schema. This is the arbitrage-safety
//      argument: a sampled path that could undercharge would let a
//      buyer assemble information below its exact price.
//   2. RECONCILIATION — purchases always settle at the exact price. A
//      durable broker that served estimates writes a ledger whose money
//      trail is bit-identical to a twin that never approximated;
//      Quoted/ReconcileDelta are a purely informational overlay.
//   3. CONCURRENCY — approximate and exact traffic share the quote
//      cache, the background refiner and the purchase path; mixing them
//      from many goroutines must stay race-free (run under `make race`)
//      and must not erode soundness.
//   4. CLUSTER — a sharded approximate sweep reassembles into the SAME
//      estimate as a single node's: both sides recompute one
//      deterministic sample mask and fold through the same estimator.

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"qirana"
	"qirana/internal/durable"
)

// upperBoundTol absorbs float rounding between the sampled and exact
// folds: the bound must hold up to relative epsilon, never by a margin.
func upperBoundTol(exact float64) float64 { return 1e-9 * (1 + math.Abs(exact)) }

// TestApproxUpperBoundDifferential is the soundness differential: across
// all five generator schemas, every pricing function and a spread of
// error targets, the approximate quote never lands below the exact twin's
// price. The finest target forces the sample past the support size, which
// must collapse onto the exact path (Refined immediately, price
// bit-identical).
func TestApproxUpperBoundDifferential(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name  string
		seed  int64
		scale float64
		size  int
		tmpl  string // $1 placeholder, integer domain
		mod   int
		sqls  []string
	}{
		{"world-int", 1, 0, 200, "SELECT Name FROM Country WHERE Population > $1", 100000000, []string{
			"SELECT Name FROM Country WHERE Population > 1000000",
			"SELECT Continent, count(*) FROM Country GROUP BY Continent",
		}},
		{"world-str", 1, 0, 200, "SELECT count(*) FROM Country WHERE Population < $1", 100000000, []string{
			"SELECT count(*) FROM Country WHERE Continent = 'Asia'",
			"SELECT Name FROM Country WHERE Continent = 'Europe'",
		}},
		{"carcrash", 2, 300, 150, "SELECT State, min(Age) FROM crash WHERE Age > $1 GROUP BY State", 80, []string{
			"SELECT count(*) FROM crash WHERE Age > 40",
		}},
		{"tpch", 4, 0.002, 120, "SELECT s_name FROM supplier WHERE s_acctbal > $1", 9000, []string{
			"SELECT count(*) FROM supplier WHERE s_acctbal < 1000",
		}},
		{"dblp", 5, 0.02, 120, "SELECT count(*) FROM dblp WHERE ToNodeId < $1", 2000, []string{
			"SELECT count(*) FROM dblp WHERE FromNodeId < 500",
		}},
	}
	// Coarse → fine: 0.3 samples a handful of elements, 0.12 a real
	// fraction, 0.02 needs more elements than any of these support sets
	// hold and must fall back to the exact sweep.
	maxErrs := []float64{0.3, 0.12, 0.02}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dataset := strings.SplitN(tc.name, "-", 2)[0]
			_, exactB, approxB := twinPair(t, dataset, tc.seed, tc.scale, tc.size)

			for _, fn := range clusterFns {
				fn := fn
				for _, sql := range tc.sqls {
					want, err := exactB.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}, Func: &fn})
					if err != nil {
						t.Fatal(err)
					}
					for _, me := range maxErrs {
						label := fmt.Sprintf("fn=%v maxErr=%g %s", fn, me, sql)
						got, err := approxB.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}, Func: &fn, MaxError: me})
						if err != nil {
							t.Fatal(err)
						}
						est := got.PerQuery[0].Estimate
						if est == nil || !est.Approx {
							t.Fatalf("%s: no estimate provenance on an approximate quote: %+v", label, got.PerQuery[0])
						}
						if est.SampleFrac <= 0 || est.SampleFrac > 1 || est.SampleN <= 0 {
							t.Fatalf("%s: implausible sample %g (%d elements)", label, est.SampleFrac, est.SampleN)
						}
						if got.Total < want.Total-upperBoundTol(want.Total) {
							t.Fatalf("%s: approximate quote %v UNDERCUTS exact price %v (frac %g, refined %v) — not arbitrage-safe",
								label, got.Total, want.Total, est.SampleFrac, est.Refined)
						}
						if est.SampleFrac == 1 {
							// The target needed the whole set: this IS the exact
							// path and must say so, bit-identically.
							if !est.Refined || got.Total != want.Total {
								t.Fatalf("%s: full-sample quote should be the exact price %v refined, got %v (refined %v)",
									label, want.Total, got.Total, est.Refined)
							}
						}
						if est.Refined && est.CI != 0 {
							t.Fatalf("%s: refined quote still advertises CI %v", label, est.CI)
						}
					}
				}
			}

			// Parameterized probes: random template instantiations at a
			// random error target keep the bound.
			prop := func(pick uint16, coarse bool) bool {
				sql := strings.Replace(tc.tmpl, "$1", fmt.Sprint(int(pick)%tc.mod), 1)
				me := 0.1
				if coarse {
					me = 0.25
				}
				want, err := exactB.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}})
				if err != nil {
					t.Fatal(err)
				}
				got, err := approxB.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}, MaxError: me})
				if err != nil {
					t.Fatal(err)
				}
				if got.Total < want.Total-upperBoundTol(want.Total) {
					t.Errorf("pick=%d maxErr=%g: approx %v < exact %v", pick, me, got.Total, want.Total)
					return false
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 4}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestApproxBatchUpperBound pins the multi-query approximate path: each
// query in a non-bundle batch gets its own estimate block and its own
// sound bound.
func TestApproxBatchUpperBound(t *testing.T) {
	ctx := context.Background()
	_, exactB, approxB := twinPair(t, "world", 1, 0, 200)
	sqls := []string{
		"SELECT Name FROM Country WHERE Population > 1000000",
		"SELECT Continent, count(*) FROM Country GROUP BY Continent",
		"SELECT * FROM CountryLanguage",
	}
	want, err := exactB.Price(ctx, qirana.PriceRequest{SQLs: sqls})
	if err != nil {
		t.Fatal(err)
	}
	got, err := approxB.Price(ctx, qirana.PriceRequest{SQLs: sqls, MaxError: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Prices) != len(sqls) {
		t.Fatalf("approx batch returned %d prices, want %d", len(got.Prices), len(sqls))
	}
	for i := range sqls {
		if got.PerQuery[i].Estimate == nil {
			t.Fatalf("query %d: batch entry lost its estimate provenance", i)
		}
		if got.Prices[i] < want.Prices[i]-upperBoundTol(want.Prices[i]) {
			t.Fatalf("query %d: approx %v < exact %v", i, got.Prices[i], want.Prices[i])
		}
	}
}

// TestApproxPurchaseReconcilesToExactTwinLedger is the reconciliation
// differential: a durable broker that approximate-quotes before every
// purchase must write the SAME ledger — record for record, bit for bit
// once the informational Quoted/ReconcileDelta overlay is stripped — as
// a durable twin that never served an estimate, and the overlay itself
// must tie out: Quoted is the estimate the buyer saw, and subtracting
// ReconcileDelta lands back on the exact quote price.
func TestApproxPurchaseReconcilesToExactTwinLedger(t *testing.T) {
	ctx := context.Background()
	db, err := qirana.LoadDataset("world", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := qirana.Options{SupportSetSize: 300, Seed: 7}
	dirA, dirB := t.TempDir(), t.TempDir()
	approxB, err := qirana.OpenBroker(dirA, db, 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	exactB, err := qirana.OpenBroker(dirB, db, 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { exactB.Close() })

	purchases := []struct{ buyer, sql string }{
		{"alice", "SELECT Name, Population FROM Country WHERE Continent = 'Asia'"},
		{"bob", "SELECT Continent, count(*) FROM Country GROUP BY Continent"},
		{"alice", "SELECT Name FROM Country WHERE Population > 50000000"},
		{"alice", "SELECT Name, Population FROM Country WHERE Continent = 'Asia'"}, // re-buy: net 0
	}
	quotedSeen := 0
	receipts := make([]*qirana.Receipt, len(purchases))
	for i, p := range purchases {
		// The buyer's journey on the approximating broker: see an
		// estimate first, then buy.
		qa, err := approxB.Price(ctx, qirana.PriceRequest{SQLs: []string{p.sql}, MaxError: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		qe, err := exactB.Price(ctx, qirana.PriceRequest{SQLs: []string{p.sql}})
		if err != nil {
			t.Fatal(err)
		}
		if qa.Total < qe.Total-upperBoundTol(qe.Total) {
			t.Fatalf("purchase %d: approx quote %v < exact %v", i, qa.Total, qe.Total)
		}
		recA := mustBuy(t, approxB, p.buyer, p.sql)
		recB := mustBuy(t, exactB, p.buyer, p.sql)
		if recA.Gross != recB.Gross || recA.Refund != recB.Refund ||
			recA.Net != recB.Net || recA.Balance != recB.Balance {
			t.Fatalf("purchase %d: money trail diverged with estimates on: %+v vs %+v", i, recA, recB)
		}
		if recB.Quoted != 0 || recB.ReconcileDelta != 0 {
			t.Fatalf("purchase %d: exact twin grew a reconcile trail: %+v", i, recB)
		}
		if recA.Quoted != 0 {
			quotedSeen++
			if recA.ReconcileDelta < 0 {
				t.Fatalf("purchase %d: negative reconcile delta %v", i, recA.ReconcileDelta)
			}
			// Quoted − delta must land on the exact quote price (the
			// refiner may have upgraded the entry between quote and
			// purchase, in which case Quoted == exact and delta == 0 —
			// the identity holds either way).
			if back := recA.Quoted - recA.ReconcileDelta; math.Abs(back-qe.Total) > upperBoundTol(qe.Total) {
				t.Fatalf("purchase %d: Quoted %v − delta %v = %v, want exact quote %v",
					i, recA.Quoted, recA.ReconcileDelta, back, qe.Total)
			}
		}
		receipts[i] = recA
	}
	if quotedSeen == 0 {
		t.Fatal("no purchase carried a Quoted trail — the approximate quotes never reached the reconcile path")
	}

	// The ledgers, scanned live (Close would checkpoint them away): the
	// overlay fields must match the receipts, and with the overlay
	// zeroed the records must be bit-identical.
	recsA, _, err := durable.ScanLedgerFile(filepath.Join(dirA, "ledger.wal"))
	if err != nil {
		t.Fatal(err)
	}
	recsB, _, err := durable.ScanLedgerFile(filepath.Join(dirB, "ledger.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recsA) != len(purchases) || len(recsB) != len(purchases) {
		t.Fatalf("ledgers hold %d and %d records, want %d", len(recsA), len(recsB), len(purchases))
	}
	for i := range recsA {
		if recsA[i].Quoted != receipts[i].Quoted || recsA[i].ReconcileDelta != receipts[i].ReconcileDelta {
			t.Fatalf("record %d: ledger overlay (%v, %v) != receipt (%v, %v)",
				i, recsA[i].Quoted, recsA[i].ReconcileDelta, receipts[i].Quoted, receipts[i].ReconcileDelta)
		}
		a, b := recsA[i], recsB[i]
		a.Quoted, a.ReconcileDelta = 0, 0
		b.Quoted, b.ReconcileDelta = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("record %d: ledgers diverge beyond the reconcile overlay:\n  approx: %+v\n  exact:  %+v", i, a, b)
		}
	}

	// Recovery folds the overlay away too: reopening the approximating
	// broker's directory recovers the twin's balances exactly.
	if err := approxB.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := qirana.OpenBroker(dirA, db, 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reopened.Close() })
	for _, buyer := range []string{"alice", "bob"} {
		if got, want := reopened.TotalPaid(buyer), exactB.TotalPaid(buyer); got != want {
			t.Fatalf("recovered TotalPaid(%s) = %v, exact twin holds %v", buyer, got, want)
		}
	}
}

// TestApproxExactMixedTrafficHammer drives approximate quotes, exact
// quotes and purchases concurrently through one broker — cache, refiner
// and reconcile all racing — and then re-checks soundness on a quiet
// broker. Its real teeth are under `make race`.
func TestApproxExactMixedTrafficHammer(t *testing.T) {
	ctx := context.Background()
	db, err := qirana.LoadDataset("world", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := qirana.NewBroker(db, 100, qirana.Options{SupportSetSize: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	sqls := []string{
		"SELECT Name FROM Country WHERE Population > 1000000",
		"SELECT Continent, count(*) FROM Country GROUP BY Continent",
		"SELECT count(*) FROM Country WHERE Continent = 'Asia'",
		"SELECT Language FROM CountryLanguage WHERE Percentage > 50",
	}
	const goroutines, iters = 8, 24
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buyer := fmt.Sprintf("buyer-%d", g)
			for i := 0; i < iters; i++ {
				sql := sqls[(g+i)%len(sqls)]
				switch i % 3 {
				case 0:
					if _, err := b.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}}); err != nil {
						t.Errorf("exact quote: %v", err)
					}
				case 1:
					resp, err := b.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}, MaxError: 0.2})
					if err != nil {
						t.Errorf("approx quote: %v", err)
					} else if resp.PerQuery[0].Estimate == nil {
						t.Errorf("approx quote lost its estimate block")
					}
				case 2:
					rec, err := b.Purchase(ctx, qirana.PurchaseRequest{Buyer: buyer, SQL: sql})
					if err != nil {
						t.Errorf("purchase: %v", err)
					} else if rec.ReconcileDelta < 0 {
						t.Errorf("purchase reconciled upward: %+v", rec)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiet now: whatever state the races left in the cache, every
	// approximate quote still bounds the exact price.
	for _, sql := range sqls {
		want, err := b.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}})
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}, MaxError: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		if got.Total < want.Total-upperBoundTol(want.Total) {
			t.Fatalf("%s: post-hammer approx %v < exact %v", sql, got.Total, want.Total)
		}
	}
}

// TestApproxClusterShardedBitIdentical extends the cluster contract to
// the sampled path: a 3-shard router and a single node independently
// recompute the same deterministic sample mask and must produce the SAME
// estimate — upper bound, point, CI and sample size, bit for bit — for
// every pricing function and error target. The quote cache is disabled
// on both sides so every call is a fresh sampled sweep: otherwise the
// background refiner could upgrade one side's entry to the exact price
// mid-test and the totals would legitimately (but unhelpfully) diverge.
func TestApproxClusterShardedBitIdentical(t *testing.T) {
	ctx := context.Background()
	db, err := qirana.LoadDataset("world", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	opt := qirana.Options{SupportSetSize: 200, Seed: 7, QuoteCacheSize: qirana.QuoteCacheDisabled}
	single, err := qirana.NewBroker(db, 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := qirana.NewBroker(db, 100, opt)
	if err != nil {
		t.Fatal(err)
	}
	attachCluster(t, routed, db, 3, 200)
	sqls := []string{
		"SELECT Name FROM Country WHERE Population > 1000000",
		"SELECT Continent, count(*) FROM Country GROUP BY Continent",
	}
	for _, fn := range clusterFns {
		fn := fn
		for _, sql := range sqls {
			for _, me := range []float64{0.3, 0.1} {
				label := fmt.Sprintf("fn=%v maxErr=%g %s", fn, me, sql)
				want, err := single.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}, Func: &fn, MaxError: me})
				if err != nil {
					t.Fatal(err)
				}
				got, err := routed.Price(ctx, qirana.PriceRequest{SQLs: []string{sql}, Func: &fn, MaxError: me})
				if err != nil {
					t.Fatal(err)
				}
				if got.Total != want.Total {
					t.Fatalf("%s: routed approx %v != single-node %v", label, got.Total, want.Total)
				}
				ge, we := got.PerQuery[0].Estimate, want.PerQuery[0].Estimate
				if ge == nil || we == nil {
					t.Fatalf("%s: missing estimate block (routed %v, single %v)", label, ge, we)
				}
				if ge.Point != we.Point || ge.CI != we.CI ||
					ge.SampleFrac != we.SampleFrac || ge.SampleN != we.SampleN ||
					ge.Refined != we.Refined {
					t.Fatalf("%s: routed estimate %+v != single-node %+v", label, ge, we)
				}
			}
		}
	}
}
