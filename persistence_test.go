package qirana

import (
	"bytes"
	"math"
	"testing"
)

// TestBrokerRestartKeepsPrices: a broker reloaded from a saved support set
// over the same database quotes identical prices — the restart story the
// paper solves by persisting UpdateQueries/UndoUpdateQueries.
func TestBrokerRestartKeepsPrices(t *testing.T) {
	db, err := LoadDataset("world", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := NewBroker(db, 100, Options{SupportSetSize: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT Name FROM Country WHERE Continent = 'Asia'",
		"SELECT Continent, count(*) FROM Country GROUP BY Continent",
		"SELECT * FROM CountryLanguage",
	}
	want := make([]float64, len(queries))
	for i, sql := range queries {
		p, err := b1.Quote(sql)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}
	var buf bytes.Buffer
	if err := b1.SaveSupportSet(&buf); err != nil {
		t.Fatal(err)
	}

	b2, err := NewBrokerFromSupport(db, 100, &buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, sql := range queries {
		p, err := b2.Quote(sql)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-want[i]) > 1e-9 {
			t.Errorf("%q: %g after restart, want %g", sql, p, want[i])
		}
	}
}

func TestAskWithRefundFlow(t *testing.T) {
	db, err := LoadDataset("world", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBroker(db, 100, Options{SupportSetSize: 250, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, g1, r1, err := b.AskWithRefund("zoe", "SELECT Continent FROM Country")
	if err != nil {
		t.Fatal(err)
	}
	if r1 != 0 || g1 <= 0 {
		t.Fatalf("first purchase: gross %g refund %g", g1, r1)
	}
	// The determined histogram is fully refunded.
	_, g2, r2, err := b.AskWithRefund("zoe", "SELECT Continent, count(*) FROM Country GROUP BY Continent")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g2-r2) > 1e-9 {
		t.Fatalf("owned information not fully refunded: gross %g refund %g", g2, r2)
	}
	if math.Abs(b.TotalPaid("zoe")-g1) > 1e-9 {
		t.Fatalf("net paid %g, want %g", b.TotalPaid("zoe"), g1)
	}
}
