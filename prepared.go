package qirana

import (
	"context"
	"fmt"
	"sync"

	"qirana/internal/sqlengine/ast"
	"qirana/internal/sqlengine/exec"
)

// This file implements prepared query templates: Broker.Prepare parses,
// canonicalizes and analyzes a $N-parameterized statement ONCE, and
// Stmt.Price / Stmt.Purchase run only the parameter-sensitive residual
// work per call. A warm parameterized quote touches no lexer, parser or
// canonical printer: it renders the (tiny) parameter signature, assembles
// the precomputed template cache key, and serves the entry — the same
// "td|"/"te|" entries the ad-hoc path writes for auto-detected template
// instances, so prepared and unprepared traffic share one warm cache.
//
// What is — and is not — shared across parameter vectors:
//
//   - Shared once per template: the parse tree, the name-resolution
//     analysis, the literal-stripped canonical form (ast.Template), and
//     the referenced-relation list behind version stamping.
//   - Shared per parameter vector (bounded LRU): the bound *exec.Query.
//     Keeping the pointer stable across calls ALSO keeps the engine's
//     per-query state warm — the §4.1/§4.2 disagreement checker (static
//     classification, contribution PK sets, tagged-query skeletons) and
//     the executor's version-stamped index cache are keyed by that
//     pointer, so repeat bindings skip reclassification entirely.
//   - Never shared across vectors: the checker's static classification
//     itself. Its contribution query embeds the WHERE constants, so the
//     classification is parameter-DEPENDENT; sharing it across constants
//     would be unsound. Pricing work that survives a constant change is
//     instead shared through the template-keyed quote cache.
//
// Prepared prices are bit-identical to ad-hoc prices of the substituted
// SQL: Bind produces a statement structurally identical to parsing the
// substituted text, and everything downstream is the one shared engine
// path.

// maxBoundQueries bounds each Stmt's per-parameter-vector bound-query
// cache (FIFO eviction). Engine-side checker state is bounded separately
// (the checker map resets wholesale past its own cap), so this only
// limits per-Stmt memory.
const maxBoundQueries = 128

// Stmt is a prepared statement: a query template with $1-style
// placeholders, compiled once and priceable per parameter vector. Safe
// for concurrent use.
type Stmt struct {
	b    *Broker
	sql  string           // template text as given to Prepare
	stmt *ast.SelectStmt  // parsed template; never mutated after Prepare
	tmpl *ast.Template    // literal-stripped canonical form + sites
	tbls []string         // referenced relations (binding-independent)

	mu    sync.Mutex
	bound map[string]*exec.Query // param signature → bound compiled query
	order []string               // FIFO over bound's keys
}

// Prepare compiles a query template with $N placeholders (numbered
// contiguously from $1; a template may also have zero placeholders). The
// returned Stmt caches the parse tree, analysis, canonical template and
// referenced-relation list, so Stmt.Price runs only parameter-sensitive
// work. Statements the canonical printer cannot template (pathological
// quoted identifiers that collide with its internal markers) are
// rejected.
func (b *Broker) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer b.obs.Timer("broker_prepare")()
	b.obs.Add("broker_prepare_requests", 1)
	q, err := exec.Compile(sql, b.db.Schema)
	if err != nil {
		return nil, err
	}
	tmpl, err := ast.NewTemplate(q.Stmt)
	if err != nil {
		return nil, fmt.Errorf("prepare %q: %w", sql, err)
	}
	return &Stmt{
		b:     b,
		sql:   sql,
		stmt:  q.Stmt,
		tmpl:  tmpl,
		tbls:  ast.ReferencedTables(q.Stmt),
		bound: make(map[string]*exec.Query),
	}, nil
}

// SQL returns the template text the statement was prepared from.
func (s *Stmt) SQL() string { return s.sql }

// NumParams returns the number of $N parameters the template takes.
func (s *Stmt) NumParams() int { return s.tmpl.NumParams }

// Template returns the literal-stripped canonical form of the template —
// the fingerprint under which all its instances share quote-cache
// entries.
func (s *Stmt) Template() string { return s.tmpl.Canon }

// boundQuery returns the compiled query for a parameter vector, binding
// and analyzing on first use and caching by the exact parameter
// signature. The returned pointer is stable across calls with the same
// signature, which keeps engine-side per-query state warm.
func (s *Stmt) boundQuery(sig string, params []Value) (*exec.Query, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.bound[sig]; ok {
		return q, nil
	}
	q, err := s.bindFresh(params)
	if err != nil {
		return nil, err
	}
	if len(s.order) >= maxBoundQueries {
		delete(s.bound, s.order[0])
		s.order = s.order[1:]
	}
	s.bound[sig] = q
	s.order = append(s.order, sig)
	return q, nil
}

// bindFresh deep-clones the template with params substituted and
// analyzes the clone (analysis annotations are keyed by node pointer, so
// a clone always re-analyzes). The query's SQL is the substituted
// statement's rendering — what purchase ledgers and buyer histories
// record, never the template text.
func (s *Stmt) bindFresh(params []Value) (*exec.Query, error) {
	stmt, err := ast.Bind(s.stmt, params)
	if err != nil {
		return nil, err
	}
	return exec.CompileStmt(stmt, s.b.db.Schema)
}

// keys assembles the template cache keys for one parameter signature —
// identical, by construction, to what the ad-hoc path's disKey /
// entropyKey produce for the substituted statement, so both paths share
// entries. Callers hold b.mu.RLock.
func (s *Stmt) keys(fn PricingFunc, sig string) (disK string, entK func() string) {
	b := s.b
	ver := b.maxVersionTables(s.tbls)
	suffix := s.tmpl.Canon + "\x02" + sig
	disK = fmt.Sprintf("td|%d|%d|%s", b.supportGen, ver, suffix)
	entK = func() string {
		return fmt.Sprintf("te|%d|%d|%d|%d|%s", int(fn), b.engine.WeightsEpoch(), b.supportGen, ver, suffix)
	}
	return disK, entK
}

// Price prices one instance of the template under the broker's default
// pricing function. The result is bit-identical to an ad-hoc Price of
// the constant-substituted SQL.
func (s *Stmt) Price(ctx context.Context, params ...Value) (*PriceResponse, error) {
	return s.PriceWith(ctx, s.b.fn, params...)
}

// PriceWith is Price under a specific pricing function.
func (s *Stmt) PriceWith(ctx context.Context, fn PricingFunc, params ...Value) (resp *PriceResponse, err error) {
	b := s.b
	b.obs.Add("broker_price_requests", 1)
	defer b.obs.Timer("broker_price")()
	defer func() { b.countOutcome(err) }()

	sig, err := s.tmpl.ParamKey(params)
	if err != nil {
		return nil, err
	}
	q, err := s.boundQuery(sig, params)
	if err != nil {
		return nil, err
	}

	b.mu.RLock()
	defer b.mu.RUnlock()
	disK, entK := s.keys(fn, sig)
	price, stats, cached, err := b.quoteKeyedLocked(ctx, fn, []*exec.Query{q}, func() string {
		if fn == WeightedCoverage || fn == UniformEntropyGain {
			return disK
		}
		return entK()
	})
	if err != nil {
		return nil, err
	}
	return &PriceResponse{
		Prices: []float64{price},
		Total:  price,
		Stats:  stats,
		PerQuery: []QuoteInfo{
			{Price: price, Stats: stats, Cached: cached},
		},
	}, nil
}

// Purchase runs one instance of the template for the buyer and applies
// the history-aware charge — Broker.Purchase with the binding work
// already done. The purchase ledger and the buyer's history record the
// substituted SQL (the template text is not a runnable query), so
// durability replay is oblivious to how the query was submitted.
//
// The query is bound fresh per purchase rather than served from the
// bound-query cache: purchases execute the query outside the engine
// mutex, and the executor's index cache on a shared query must not race
// a concurrent pricing sweep.
func (s *Stmt) Purchase(ctx context.Context, buyer string, params ...Value) (rec *Receipt, err error) {
	return s.purchase(ctx, buyer, false, params)
}

// PurchaseWithRefund is Purchase under the charge-then-refund settlement
// model (see PurchaseRequest.Refund).
func (s *Stmt) PurchaseWithRefund(ctx context.Context, buyer string, params ...Value) (rec *Receipt, err error) {
	return s.purchase(ctx, buyer, true, params)
}

func (s *Stmt) purchase(ctx context.Context, buyer string, refund bool, params []Value) (rec *Receipt, err error) {
	b := s.b
	b.obs.Add("broker_purchase_requests", 1)
	defer b.obs.Timer("broker_purchase")()
	defer func() { b.countOutcome(err) }()

	sig, err := s.tmpl.ParamKey(params)
	if err != nil {
		return nil, err
	}
	q, err := s.bindFresh(params)
	if err != nil {
		return nil, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	disK, _ := s.keys(b.fn, sig)
	req := PurchaseRequest{Buyer: buyer, SQL: q.SQL, Refund: refund}
	return b.purchaseLocked(ctx, req, q, disK)
}
