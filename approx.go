package qirana

// Approximate fast-path pricing (ROADMAP item 2, DESIGN.md §13). A
// PriceRequest with MaxError > 0 — or any request while load shedding
// is active — is served from a deterministic stratified sub-sample of
// the support set instead of a full sweep:
//
//	quote (approx)  ──►  cache "a|" entry {upper bound, point, CI}
//	       │                   │
//	       │                   ▼ background refiner (or any purchase)
//	       │             entry refined: exact price known
//	       ▼                   │
//	purchase ──────────────────┴──► settles at the EXACT price; the
//	                                quoted−exact delta is recorded in
//	                                the Receipt and the ledger record
//
// The served estimate is a sound upper bound on the exact price (see
// internal/pricing/approx.go for the per-function argument), so
// approximate quotes are arbitrage-safe: a buyer can never assemble
// information more cheaply through the sampled path, and reconciliation
// at purchase time only ever moves the charge DOWN to the exact price.

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qirana/internal/obs"
	"qirana/internal/pricing"
	"qirana/internal/sqlengine/ast"
	"qirana/internal/sqlengine/exec"
	"qirana/internal/support"
)

// zApprox is the normal quantile behind the MaxError→sample-size rule
// (matching the ~95% confidence interval the estimator reports).
const zApprox = 1.96

// minApproxSample is the smallest sample the broker will price from:
// below this the variance estimate is meaningless.
const minApproxSample = 16

// EstimateInfo is the provenance block attached to a QuoteInfo served
// by the approximate path. Its presence marks the price as coming from
// the sampled machinery; Refined distinguishes entries the background
// refiner (or a purchase) has already upgraded to the exact price.
type EstimateInfo struct {
	// Approx is true for every estimate block (it keeps the JSON
	// self-describing when the block is embedded elsewhere).
	Approx bool `json:"approx"`
	// Point is the statistical point estimate of the exact price; the
	// served Price is the sound upper bound (Price ≥ exact ≥ 0).
	Point float64 `json:"point"`
	// CI is the ~95% confidence half-width around Point (one-sided gap
	// to the bound for the entropy functions).
	CI float64 `json:"ci"`
	// SampleFrac and SampleN report the realized sample.
	SampleFrac float64 `json:"sample_frac"`
	SampleN    int     `json:"sample_n"`
	// MaxError is the error target this quote was served under (after
	// any load-shedding floor).
	MaxError float64 `json:"max_error"`
	// Refined is true once the entry has been upgraded to the exact
	// price — the served Price then IS exact and CI is 0.
	Refined bool `json:"refined"`
	// Degraded marks a quote priced while part of the shard cluster was
	// unreachable: the missing slices were charged at their upper bound
	// (DESIGN.md §14), so the served Price is still ≥ the exact price.
	// MissingFrac is the fraction of support-set elements whose slice
	// did not answer. Both clear once the entry refines to exact.
	Degraded    bool    `json:"degraded,omitempty"`
	MissingFrac float64 `json:"missing_frac,omitempty"`
}

// approxEntry is one cached approximate quote ("a|" keys, KindApprox).
// The refiner upgrades it in place: same key, refined=true, exact set.
// Degraded entries (degraded.go) share the key space deliberately: the
// purchase-time reconcile and the refiner treat an outage-priced quote
// exactly like a sampled one — an upper bound waiting to settle exact.
type approxEntry struct {
	est      pricing.Estimate
	stats    pricing.Stats
	refined  bool
	exact    float64
	degraded bool
	missing  float64 // fraction of elements in unreachable slices
}

// approxKey keys an approximate quote. Like entropyKey it embeds the
// pricing function, weights epoch, support generation and data versions
// — but NOT the sample fraction, so re-quotes at any error target and
// the purchase-time reconcile all find the same entry. Callers hold
// mu.RLock.
func (b *Broker) approxKey(fn PricingFunc, qs []*exec.Query) string {
	if len(qs) == 1 {
		suffix, _ := templateSuffix(qs[0].Stmt)
		return fmt.Sprintf("a|%d|%d|%d|%d|%s", int(fn), b.engine.WeightsEpoch(), b.supportGen, b.maxVersion(qs), suffix)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "a|%d|%d|%d|%d", int(fn), b.engine.WeightsEpoch(), b.supportGen, b.maxVersion(qs))
	for _, q := range qs {
		sb.WriteByte('\x01')
		sb.WriteString(ast.Fingerprint(q.Stmt))
	}
	return sb.String()
}

// fracForMaxError converts a target relative standard error into a
// sample fraction over a support set of n elements: a binomial-worst-
// case m = z²/(4·maxErr²) keeps the point estimate's relative standard
// error near maxErr. Returns 1 when the sample would cover the whole
// set — the caller then uses the exact path (which IS the frac=1
// estimate). MaxError bounds the POINT estimate's error; the served
// price is the deterministic upper bound regardless.
func fracForMaxError(maxErr float64, n int) float64 {
	if n <= 0 || maxErr <= 0 {
		return 1
	}
	m := int(math.Ceil(zApprox * zApprox / (4 * maxErr * maxErr)))
	if m < minApproxSample {
		m = minApproxSample
	}
	if m >= n {
		return 1
	}
	return float64(m) / float64(n)
}

// approxQuoteLocked serves one approximate quote: cache hit (refined
// entries serve the exact price), or a sampled sweep at the fraction
// maxErr implies. A freshly computed entry is handed to the background
// refiner. Callers hold mu.RLock.
func (b *Broker) approxQuoteLocked(ctx context.Context, fn PricingFunc, qs []*exec.Query, maxErr float64) (QuoteInfo, error) {
	n := b.engine.Set.Size()
	frac := fracForMaxError(maxErr, n)
	if frac >= 1 {
		// The requested precision needs (nearly) the whole set: the
		// exact path is both cheaper to cache and strictly better.
		price, stats, cached, err := b.quoteLocked(ctx, fn, qs)
		if err != nil {
			return QuoteInfo{}, err
		}
		return QuoteInfo{Price: price, Stats: stats, Cached: cached, Estimate: &EstimateInfo{
			Approx: true, Point: price, SampleFrac: 1, SampleN: n, MaxError: maxErr, Refined: true,
		}}, nil
	}
	b.obs.Add("approx_quotes", 1)
	key := b.approxKey(fn, qs)
	compute := func() (any, error) {
		return b.approxSweepLocked(ctx, fn, qs, frac)
	}
	v, cached, err := b.cached(ctx, key, compute)
	if err != nil {
		return QuoteInfo{}, err
	}
	ent := v.(approxEntry)
	// A cached unrefined entry sampled more coarsely than this request
	// asks for would under-deliver precision: recompute at the finer
	// fraction and overwrite (the refined exact price beats any sample,
	// so refined entries always serve).
	if cached && !ent.refined && ent.est.SampleFrac < frac-1e-12 {
		v, err := compute()
		if err != nil {
			return QuoteInfo{}, err
		}
		ent = v.(approxEntry)
		if b.qc != nil {
			b.qc.Put(key, ent)
		}
		cached = false
	}
	if !cached && !ent.refined {
		b.enqueueRefine(key, fn, sqlsOf(qs))
	}
	if cached && ent.degraded && !ent.refined {
		// A degraded entry must not outlive the outage: re-arm the
		// refiner so a hit after the cluster heals upgrades it to exact.
		b.enqueueRefine(key, fn, sqlsOf(qs))
	}
	return b.approxInfo(ent, cached, maxErr), nil
}

// approxInfo builds the QuoteInfo served from an "a|" entry, counting
// degraded serves. Refined entries serve the exact price with the
// degraded provenance cleared: once the exact price is known, the
// outage it was quoted under no longer taints the answer.
func (b *Broker) approxInfo(ent approxEntry, cached bool, maxErr float64) QuoteInfo {
	info := QuoteInfo{Stats: ent.stats, Cached: cached, Estimate: &EstimateInfo{
		Approx:     true,
		Point:      ent.est.Point,
		CI:         ent.est.CI,
		SampleFrac: ent.est.SampleFrac,
		SampleN:    ent.est.SampleN,
		MaxError:   maxErr,
		Refined:    ent.refined,
	}}
	if ent.refined {
		info.Price = ent.exact
		info.Estimate.Point = ent.exact
		info.Estimate.CI = 0
		return info
	}
	info.Price = ent.est.Price
	if ent.degraded {
		info.Estimate.Degraded = true
		info.Estimate.MissingFrac = ent.missing
		b.obs.Add("router_degraded_quotes", 1)
	}
	return info
}

// approxSweepLocked runs the sampled sweep — remotely through the shard
// fan-out when a sweeper is installed (every shard recomputes the same
// mask from the forwarded spec), locally through the engine's live-mask
// machinery otherwise. Callers hold mu.RLock.
func (b *Broker) approxSweepLocked(ctx context.Context, fn PricingFunc, qs []*exec.Query, frac float64) (approxEntry, error) {
	n := b.engine.Set.Size()
	mask := support.SampleMask(n, frac, b.seed, b.supportGen)
	if rs := b.sweeper; rs != nil {
		spec := SweepSpec{Bundle: true, SupportGen: b.supportGen, SampleFrac: frac, SampleSeed: b.seed}
		switch fn {
		case WeightedCoverage, UniformEntropyGain:
			dis, stats, err := rs.SweepBits(ctx, sqlsOf(qs), spec)
			if err != nil {
				return approxEntry{}, err
			}
			est, err := b.engine.EstimateFromSampledDisagreements(fn, dis[0], mask)
			if err != nil {
				return approxEntry{}, err
			}
			return approxEntry{est: est, stats: stats[0]}, nil
		case ShannonEntropy, QEntropy:
			elems, stats, err := rs.SweepHashes(ctx, sqlsOf(qs), spec)
			if err != nil {
				return approxEntry{}, err
			}
			est, err := b.engine.EstimateFromSampledHashes(fn, elems[0], mask)
			if err != nil {
				return approxEntry{}, err
			}
			return approxEntry{est: est, stats: stats[0]}, nil
		}
		return approxEntry{}, fmt.Errorf("unknown pricing function %v", fn)
	}
	b.engineMu.Lock()
	defer b.engineMu.Unlock()
	b.refreshEngineLocked()
	b.engine.LastStats = pricing.Stats{}
	est, err := b.engine.ApproxPriceCtx(ctx, fn, mask, qs...)
	if err != nil {
		return approxEntry{}, err
	}
	return approxEntry{est: est, stats: b.engine.LastStats}, nil
}

// ---------------------------------------------------------------------
// Background refiner
// ---------------------------------------------------------------------

// refineQueueLen bounds the refine backlog; beyond it jobs are dropped
// (counted) rather than blocking the serving path. A dropped refinement
// costs nothing but freshness: the entry still reconciles at purchase.
const refineQueueLen = 256

type refineJob struct {
	key  string
	fn   PricingFunc
	sqls []string
}

// refiner is the lazily-started background goroutine that upgrades
// cached approximate entries to exact prices.
type refiner struct {
	once sync.Once
	ch   chan refineJob
	quit chan struct{}
	wg   sync.WaitGroup
}

// enqueueRefine hands a freshly computed approximate entry to the
// refiner, starting it on first use. Never blocks: a full queue drops
// the job and bumps approx_refine_dropped.
func (b *Broker) enqueueRefine(key string, fn PricingFunc, sqls []string) {
	b.ref.once.Do(func() {
		b.ref.ch = make(chan refineJob, refineQueueLen)
		b.ref.quit = make(chan struct{})
		b.ref.wg.Add(1)
		go b.refineLoop()
	})
	select {
	case b.ref.ch <- refineJob{key: key, fn: fn, sqls: sqls}:
	case <-b.ref.quit:
	default:
		b.obs.Add("approx_refine_dropped", 1)
	}
}

// stopRefiner shuts the refine goroutine down (idempotent; safe when it
// never started). Called from Broker.Close.
func (b *Broker) stopRefiner() {
	b.ref.once.Do(func() {
		// Never started: claim the once so a post-Close enqueue cannot
		// spawn a loop against a closed broker.
		b.ref.ch = make(chan refineJob, 1)
		b.ref.quit = make(chan struct{})
	})
	select {
	case <-b.ref.quit:
		return // already stopped
	default:
	}
	close(b.ref.quit)
	b.ref.wg.Wait()
}

func (b *Broker) refineLoop() {
	defer b.ref.wg.Done()
	for {
		select {
		case <-b.ref.quit:
			return
		case job := <-b.ref.ch:
			b.refineOne(job)
		}
	}
}

// refineOne recomputes one quote exactly and upgrades the cached "a|"
// entry in place. The job's key embeds the generation/version/epoch the
// estimate was computed under, so a configuration change between
// enqueue and refine makes the Get miss (resamples invalidate the
// cache) or touches an entry no live key can reach — never a wrong
// serve. The exact computation goes through the normal quote path, so
// it also warms the exact ("d|"/"e|"/template) entries for free.
func (b *Broker) refineOne(job refineJob) {
	if b.qc == nil {
		return
	}
	ctx := context.Background()
	qs, err := b.compileAll(job.sqls)
	if err != nil {
		b.obs.Add("approx_refine_errors", 1)
		return
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	price, _, _, err := b.quoteLocked(ctx, job.fn, qs)
	if err != nil {
		b.obs.Add("approx_refine_errors", 1)
		return
	}
	if v, ok := b.qc.Get(job.key); ok {
		ent := v.(approxEntry)
		if !ent.refined {
			ent.refined = true
			ent.exact = price
			b.qc.Put(job.key, ent)
			b.obs.Add("approx_refined", 1)
		}
	}
}

// markRefined upgrades the "a|" entry for qs (if present and current)
// with an exact price learned as a by-product — purchases compute exact
// disagreements anyway, so they refine the quote for free. Callers hold
// mu.RLock. Returns the quoted estimate the entry was serving before
// the upgrade and whether an unrefined approximate quote existed.
func (b *Broker) markRefined(fn PricingFunc, qs []*exec.Query, exact float64) (quoted float64, wasApprox bool) {
	if b.qc == nil {
		return 0, false
	}
	key := b.approxKey(fn, qs)
	v, ok := b.qc.Get(key)
	if !ok {
		return 0, false
	}
	ent := v.(approxEntry)
	if ent.refined {
		return ent.exact, true
	}
	quoted = ent.est.Price
	ent.refined = true
	ent.exact = exact
	b.qc.Put(key, ent)
	b.obs.Add("approx_refined", 1)
	return quoted, true
}

// ---------------------------------------------------------------------
// Load shedding
// ---------------------------------------------------------------------

// shedFloors are the MaxError floors per shed level: level 0 is normal
// serving, each escalation coarsens the mandatory precision.
var shedFloors = [...]float64{0, 0.05, 0.1, 0.2}

// shedCheckEvery rate-limits the windowed p99 evaluation; between
// checks maybeShed is one atomic load.
const shedCheckEvery = 250 * time.Millisecond

// shedMinWindow is the minimum number of observations in a window
// before the p99 is trusted to move the level.
const shedMinWindow = 20

// shedState is the load-shedding state machine: a windowed p99 over the
// broker_price histogram drives a small hysteresis ladder.
type shedState struct {
	level     atomic.Int64
	lastCheck atomic.Int64 // unix nanos of the last window evaluation

	mu      sync.Mutex // guards prev + lastP99 (one evaluator at a time)
	prev    obs.HistCounts
	lastP99 time.Duration
}

// ShedInfo is the externally visible shed state (served in /stats).
type ShedInfo struct {
	// Target is Options.ShedTargetP99 (0 = shedding disabled).
	Target time.Duration `json:"target_p99_ns"`
	// Level is the current escalation level (0 = exact serving).
	Level int `json:"level"`
	// MinMaxError is the MaxError floor currently enforced on quotes.
	MinMaxError float64 `json:"min_max_error"`
	// LastP99 is the windowed p99 at the last evaluation.
	LastP99 time.Duration `json:"last_p99_ns"`
}

// ShedState reports the current load-shedding state.
func (b *Broker) ShedState() ShedInfo {
	lvl := int(b.shed.level.Load())
	b.shed.mu.Lock()
	last := b.shed.lastP99
	b.shed.mu.Unlock()
	return ShedInfo{
		Target:      b.opts.ShedTargetP99,
		Level:       lvl,
		MinMaxError: shedFloors[lvl],
		LastP99:     last,
	}
}

// maybeShed returns the MaxError floor currently in force, advancing
// the state machine at most once per shedCheckEvery. The fast path —
// shedding disabled, or between checks — is one or two atomic loads.
func (b *Broker) maybeShed() float64 {
	target := b.opts.ShedTargetP99
	if target <= 0 {
		return 0
	}
	now := time.Now().UnixNano()
	last := b.shed.lastCheck.Load()
	if now-last < int64(shedCheckEvery) || !b.shed.lastCheck.CompareAndSwap(last, now) {
		return shedFloors[b.shed.level.Load()]
	}
	b.shed.mu.Lock()
	defer b.shed.mu.Unlock()
	cur := b.obs.Histogram("broker_price").Counts()
	p99, ok := obs.QuantileBetween(b.shed.prev, cur, 0.99)
	window := cur.Count - b.shed.prev.Count
	b.shed.prev = cur
	if !ok || window < shedMinWindow {
		return shedFloors[b.shed.level.Load()]
	}
	b.shed.lastP99 = p99
	lvl := b.shed.level.Load()
	switch {
	case p99 > target && lvl < int64(len(shedFloors)-1):
		lvl++
		b.shed.level.Store(lvl)
		b.obs.Add("shed_escalations", 1)
	case p99 < target*3/4 && lvl > 0:
		lvl--
		b.shed.level.Store(lvl)
		b.obs.Add("shed_deescalations", 1)
	}
	return shedFloors[lvl]
}
